// End-to-end data integrity under corruption injection: frame bit-flips
// and truncations on the wire, stored-chunk rot at rest, and torn writes
// on crash. The invariants: no silently wrong bytes ever reach a caller —
// every read either matches the reference image after retries or fails
// with a typed kCorruption/kDeadlineExceeded — and the same fault seed
// reproduces the same corruption schedule bit for bit.
#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "common/bytes.hpp"
#include "fault/fault.hpp"
#include "fault/fault_transport.hpp"
#include "io/method.hpp"
#include "pvfs/client.hpp"
#include "simcluster/region_stream.hpp"
#include "simcluster/sim_run.hpp"
#include "test_cluster.hpp"
#include "trace/trace.hpp"
#include "workloads/cyclic.hpp"

namespace pvfs {
namespace {

using std::chrono::microseconds;

constexpr ByteCount kFileBytes = 256 * 1024;
const Striping kStriping{0, 8, 16384};

/// Generous retry budget: combined corruption + drop rates below ~40% per
/// exchange exhaust 16 attempts with probability ~0.4^16 ≈ 4e-7.
Client::Options IntegrityClientOptions() {
  Client::Options options;
  options.retry.max_attempts = 16;
  options.retry.initial_backoff = microseconds{1};
  options.retry.max_backoff = microseconds{64};
  return options;
}

std::vector<io::AccessPattern> WorkloadPatterns() {
  workloads::CyclicConfig config;
  config.total_bytes = kFileBytes;
  config.clients = 4;
  config.accesses_per_client = 32;
  std::vector<io::AccessPattern> patterns;
  for (Rank r = 0; r < config.clients; ++r) {
    patterns.push_back(workloads::CyclicPattern(config, r));
  }
  return patterns;
}

ByteBuffer GoldenContents() {
  ByteBuffer golden(kFileBytes);
  FillPattern(golden, 99, 0);
  return golden;
}

ByteBuffer Gather(const ByteBuffer& golden, const io::AccessPattern& pattern) {
  ByteBuffer out;
  out.reserve(pattern.total_bytes());
  for (const Extent& region : pattern.file) {
    out.insert(out.end(),
               golden.begin() + static_cast<std::ptrdiff_t>(region.offset),
               golden.begin() + static_cast<std::ptrdiff_t>(region.end()));
  }
  return out;
}

ByteBuffer ReadWholeFile(Client& client, const std::string& name) {
  auto fd = client.Open(name);
  EXPECT_TRUE(fd.ok()) << fd.status().message();
  ByteBuffer out(kFileBytes);
  EXPECT_TRUE(client.Read(*fd, 0, out).ok());
  EXPECT_TRUE(client.Close(*fd).ok());
  return out;
}

const io::MethodType kMethods[] = {io::MethodType::kMultiple,
                                   io::MethodType::kDataSieving,
                                   io::MethodType::kList};

// ---- Property: corrupt frames never corrupt results ----------------------

// For any seed, with frames being bit-flipped, truncated AND dropped in
// flight, all three access methods still return exactly the fault-free
// bytes once the client retries: a damaged frame is detected by a CRC32C
// check at the receiving end, surfaced as kCorruption and resent.
TEST(IntegrityProperty, ReadsByteIdenticalUnderFrameCorruption) {
  const ByteBuffer golden = GoldenContents();
  const auto patterns = WorkloadPatterns();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    testutil::InProcCluster cluster;
    {
      Client reliable = cluster.MakeClient();
      auto fd = reliable.Create("f", kStriping);
      ASSERT_TRUE(fd.ok());
      ASSERT_TRUE(reliable.Write(*fd, 0, golden).ok());
      ASSERT_TRUE(reliable.Close(*fd).ok());
    }
    fault::FaultConfig config;
    config.seed = seed;
    config.frame_corrupt_rate = 0.15;
    config.frame_truncate_rate = 0.10;
    config.drop_rate = 0.10;
    fault::FaultInjector injector(config);
    fault::FaultInjectingTransport chaos(cluster.transport.get(), &injector);
    Client client(&chaos, IntegrityClientOptions());
    auto fd = client.Open("f");
    ASSERT_TRUE(fd.ok()) << fd.status().message();
    for (io::MethodType type : kMethods) {
      auto method = io::MakeMethod(type);
      for (const io::AccessPattern& pattern : patterns) {
        ByteBuffer buffer(pattern.total_bytes());
        Status status = method->Read(client, *fd, pattern, buffer);
        ASSERT_TRUE(status.ok())
            << "seed " << seed << " method " << static_cast<int>(type) << ": "
            << status.message();
        EXPECT_EQ(buffer, Gather(golden, pattern));
      }
    }
    EXPECT_GT(injector.counters().frames_corrupted, 0u) << "seed " << seed;
    EXPECT_GT(injector.counters().frames_truncated, 0u) << "seed " << seed;
    EXPECT_GT(client.retry_counters().corruptions, 0u) << "seed " << seed;
    EXPECT_EQ(client.retry_counters().exhausted, 0u) << "seed " << seed;
  }
}

// Same property for writes, with iod crashes layered on top: a chaotic
// write run must leave exactly the file a fault-free run leaves.
TEST(IntegrityProperty, WritesByteIdenticalUnderCorruptionAndCrashes) {
  const auto patterns = WorkloadPatterns();
  for (std::uint64_t seed = 41; seed <= 43; ++seed) {
    for (io::MethodType type : kMethods) {
      testutil::InProcCluster reference_cluster;
      testutil::InProcCluster chaos_cluster;
      fault::FaultConfig config;
      config.seed = seed;
      config.frame_corrupt_rate = 0.12;
      config.frame_truncate_rate = 0.08;
      config.drop_rate = 0.10;
      config.crash_rate = 0.01;
      config.crash_down_calls = 2;
      fault::FaultInjector injector(config);
      fault::FaultInjectingTransport chaos(chaos_cluster.transport.get(),
                                           &injector);
      Client reference(reference_cluster.transport.get());
      Client::Options options = IntegrityClientOptions();
      options.retry.max_attempts = 25;  // ride out crash windows too
      Client chaotic(&chaos, options);
      for (Client* client : {&reference, &chaotic}) {
        auto fd = client->Create("f", kStriping);
        ASSERT_TRUE(fd.ok());
        auto method = io::MakeMethod(type);
        for (size_t r = 0; r < patterns.size(); ++r) {
          ByteBuffer payload(patterns[r].total_bytes());
          FillPattern(payload, 7 + r, 0);
          Status status = method->Write(*client, *fd, patterns[r], payload);
          ASSERT_TRUE(status.ok())
              << "seed " << seed << " method " << static_cast<int>(type)
              << ": " << status.message();
        }
        ASSERT_TRUE(client->Close(*fd).ok());
      }
      Client check_ref = reference_cluster.MakeClient();
      Client check_chaos = chaos_cluster.MakeClient();
      EXPECT_EQ(ReadWholeFile(check_ref, "f"), ReadWholeFile(check_chaos, "f"))
          << "seed " << seed << " method " << static_cast<int>(type);
    }
  }
}

// ---- Chaos acceptance: all three corruption faults at once ---------------

// Frame corruption, stored-chunk rot and torn writes all armed together.
// Every read either completes byte-identical to the reference (rot inside
// the journal's retention window is repaired on read; damaged frames are
// resent) or fails with a typed, expected Status — never silently wrong
// bytes.
TEST(IntegrityChaos, AllCorruptionFaultsYieldNoSilentWrongBytes) {
  const ByteBuffer golden = GoldenContents();
  const auto patterns = WorkloadPatterns();
  testutil::InProcCluster cluster;
  {
    Client reliable = cluster.MakeClient();
    auto fd = reliable.Create("f", kStriping);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(reliable.Write(*fd, 0, golden).ok());
    ASSERT_TRUE(reliable.Close(*fd).ok());
  }

  fault::FaultConfig config;
  config.seed = 71;
  config.frame_corrupt_rate = 0.10;
  config.frame_truncate_rate = 0.05;
  config.chunk_rot_rate = 0.10;
  config.torn_write_rate = 0.05;
  config.drop_rate = 0.05;
  fault::FaultInjector injector(config);
  for (auto& iod : cluster.iods) iod->set_fault_injector(&injector);
  fault::FaultInjectingTransport chaos(cluster.transport.get(), &injector);
  Client::Options options = IntegrityClientOptions();
  options.retry.max_attempts = 30;  // rides out torn-write down windows
  Client client(&chaos, options);

  auto fd = client.Open("f");
  ASSERT_TRUE(fd.ok());
  auto method = io::MakeMethod(io::MethodType::kList);
  int ok_reads = 0;
  for (int round = 0; round < 4; ++round) {
    for (const io::AccessPattern& pattern : patterns) {
      ByteBuffer buffer(pattern.total_bytes());
      Status status = method->Read(client, *fd, pattern, buffer);
      if (status.ok()) {
        ++ok_reads;
        ASSERT_EQ(buffer, Gather(golden, pattern)) << "round " << round;
      } else {
        EXPECT_TRUE(status.code() == ErrorCode::kCorruption ||
                    status.code() == ErrorCode::kDeadlineExceeded ||
                    status.code() == ErrorCode::kUnavailable)
            << status.message();
      }
    }
  }
  EXPECT_GT(ok_reads, 0);
  // Every class of corruption was actually exercised and detected.
  EXPECT_GT(injector.counters().chunks_rotted, 0u);
  EXPECT_GT(injector.counters().frames_corrupted, 0u);
  std::uint64_t detected = client.retry_counters().corruptions;
  for (auto& iod : cluster.iods) {
    detected += iod->stats().corruptions_detected;
  }
  EXPECT_GT(detected, 0u);

  // Chaotic writes on top: once they report success, a clean client must
  // read back exactly what was written.
  ByteBuffer expected = golden;
  for (size_t r = 0; r < patterns.size(); ++r) {
    ByteBuffer payload(patterns[r].total_bytes());
    FillPattern(payload, 80 + r, 0);
    Status status = method->Write(client, *fd, patterns[r], payload);
    ASSERT_TRUE(status.ok()) << "write " << r << ": " << status.message();
    size_t taken = 0;
    for (const Extent& region : patterns[r].file) {
      std::copy(payload.begin() + static_cast<std::ptrdiff_t>(taken),
                payload.begin() +
                    static_cast<std::ptrdiff_t>(taken + region.length),
                expected.begin() + static_cast<std::ptrdiff_t>(region.offset));
      taken += region.length;
    }
  }
  (void)client.Close(*fd);
  for (auto& iod : cluster.iods) iod->set_fault_injector(nullptr);
  Client reliable = cluster.MakeClient();
  EXPECT_EQ(ReadWholeFile(reliable, "f"), expected);
}

// ---- Torn write mid list-I/O: journal replay or rollback -----------------

// An iod killed partway through a multi-chunk list write leaves a write
// intent in its journal. On the next served request the store recovers:
// a durable intent is replayed in full, a torn journal record is rolled
// back — either way each daemon holds a checksum-consistent image of
// either the old or the new bytes, never a blend inside one intent.
TEST(IntegrityChaos, TornListWriteReplaysOrRollsBackOnRecovery) {
  testutil::InProcCluster cluster;
  const ByteBuffer golden = GoldenContents();
  {
    Client reliable = cluster.MakeClient();
    auto fd = reliable.Create("f", kStriping);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(reliable.Write(*fd, 0, golden).ok());
    ASSERT_TRUE(reliable.Close(*fd).ok());
  }

  // Every write is torn: the fail-fast client's multi-region list write
  // dies at the first server it reaches.
  fault::FaultConfig config;
  config.seed = 5;
  config.torn_write_rate = 1.0;
  fault::FaultInjector injector(config);
  for (auto& iod : cluster.iods) iod->set_fault_injector(&injector);

  Client fail_fast = cluster.MakeClient();
  auto fd = fail_fast.Open("f");
  ASSERT_TRUE(fd.ok());
  ByteBuffer rewrite(kFileBytes);
  FillPattern(rewrite, 123, 0);
  // A full-stripe write spans several chunks on every server.
  Status status = fail_fast.Write(*fd, 0, rewrite);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kUnavailable) << status.message();
  EXPECT_GT(injector.counters().torn_writes, 0u);

  for (auto& iod : cluster.iods) iod->set_fault_injector(nullptr);

  // The next clean read triggers recovery on every touched daemon; its
  // result must be checksum-consistent and hold, at every offset, either
  // the old or the new byte (per-daemon replay-or-rollback atomicity).
  Client reliable = cluster.MakeClient();
  ByteBuffer after = ReadWholeFile(reliable, "f");
  ASSERT_EQ(after.size(), golden.size());
  for (size_t i = 0; i < after.size(); ++i) {
    ASSERT_TRUE(after[i] == golden[i] || after[i] == rewrite[i])
        << "byte " << i << " is neither the old nor the new value";
  }
  std::uint64_t replays = 0, rollbacks = 0, torn = 0;
  for (auto& iod : cluster.iods) {
    replays += iod->stats().journal_replays;
    rollbacks += iod->stats().journal_rollbacks;
    torn += iod->stats().torn_writes;
  }
  EXPECT_GT(torn, 0u);
  EXPECT_GT(replays + rollbacks, 0u);

  // And the failure is fully repairable: a retried rewrite restores the
  // intended image.
  auto rfd = reliable.Open("f");
  ASSERT_TRUE(rfd.ok());
  ASSERT_TRUE(reliable.Write(*rfd, 0, rewrite).ok());
  ASSERT_TRUE(reliable.Close(*rfd).ok());
  EXPECT_EQ(ReadWholeFile(reliable, "f"), rewrite);
}

// ---- Scrub through the daemon -------------------------------------------

// An on-demand scrub walks every chunk, finds a rotted bit and repairs it
// from the retained journal history; the results land in iod stats.
TEST(IntegrityScrub, IodScrubDetectsAndRepairsRottedChunk) {
  testutil::InProcCluster cluster;
  const ByteBuffer golden = GoldenContents();
  Client client = cluster.MakeClient();
  auto fd = client.Create("f", kStriping);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(client.Write(*fd, 0, golden).ok());

  // A clean scrub scans every allocated chunk and finds nothing.
  std::uint64_t scanned = 0;
  for (auto& iod : cluster.iods) {
    LocalStore::ScrubStats stats = iod->Scrub();
    EXPECT_EQ(stats.corrupt_chunks, 0u);
    scanned += stats.chunks_scanned;
  }
  EXPECT_GT(scanned, 0u);

  // Rot one stored bit behind the store's back; scrub detects and repairs.
  IoDaemon& victim = *cluster.iods[3];
  ASSERT_TRUE(victim.store().CorruptStoredBit(12345));
  LocalStore::ScrubStats dirty = victim.Scrub();
  EXPECT_EQ(dirty.corrupt_chunks, 1u);
  EXPECT_EQ(dirty.repaired_chunks, 1u);
  EXPECT_EQ(victim.stats().scrub_corruptions, 1u);
  EXPECT_EQ(victim.stats().scrub_repairs, 1u);
  EXPECT_GT(victim.stats().scrub_chunks_scanned, 0u);

  // The repaired image is the original one.
  ByteBuffer out(kFileBytes);
  ASSERT_TRUE(client.Read(*fd, 0, out).ok());
  EXPECT_EQ(out, golden);
  ASSERT_TRUE(client.Close(*fd).ok());
}

// ---- Determinism ---------------------------------------------------------

struct CorruptionRun {
  std::string events;
  sim::FaultCounters counters;
  ByteBuffer file;
};

CorruptionRun RunCorruptionWorkload(std::uint64_t seed) {
  testutil::InProcCluster cluster;
  fault::FaultConfig config;
  config.seed = seed;
  config.frame_corrupt_rate = 0.10;
  config.frame_truncate_rate = 0.05;
  config.chunk_rot_rate = 0.10;
  config.torn_write_rate = 0.03;
  config.drop_rate = 0.10;
  fault::FaultInjector injector(config);
  for (auto& iod : cluster.iods) iod->set_fault_injector(&injector);
  fault::FaultInjectingTransport chaos(cluster.transport.get(), &injector);
  Client::Options options = IntegrityClientOptions();
  options.retry.max_attempts = 30;
  Client client(&chaos, options);

  auto fd = client.Create("f", kStriping);
  EXPECT_TRUE(fd.ok());
  const auto patterns = WorkloadPatterns();
  auto method = io::MakeMethod(io::MethodType::kList);
  for (size_t r = 0; r < patterns.size(); ++r) {
    ByteBuffer payload(patterns[r].total_bytes());
    FillPattern(payload, r, 0);
    EXPECT_TRUE(method->Write(client, *fd, patterns[r], payload).ok());
    ByteBuffer back(patterns[r].total_bytes());
    EXPECT_TRUE(method->Read(client, *fd, patterns[r], back).ok());
    EXPECT_EQ(back, payload);
  }
  EXPECT_TRUE(client.Close(*fd).ok());

  CorruptionRun run;
  run.events = injector.SerializeEvents();
  run.counters = injector.counters();
  for (auto& iod : cluster.iods) iod->set_fault_injector(nullptr);
  Client reliable = cluster.MakeClient();
  run.file = ReadWholeFile(reliable, "f");
  return run;
}

// Same seed, same workload: identical corruption schedule (event for
// event, including the chosen bits and truncation points), identical
// counters, identical final bytes.
TEST(IntegrityDeterminism, SameSeedReproducesCorruptionScheduleAndBytes) {
  CorruptionRun first = RunCorruptionWorkload(61);
  CorruptionRun second = RunCorruptionWorkload(61);
  EXPECT_GT(first.counters.frames_corrupted + first.counters.frames_truncated,
            0u);
  EXPECT_GT(first.counters.chunks_rotted + first.counters.torn_writes, 0u);
  EXPECT_EQ(first.events, second.events);
  EXPECT_TRUE(first.counters == second.counters);
  EXPECT_EQ(first.file, second.file);

  CorruptionRun other = RunCorruptionWorkload(62);
  EXPECT_NE(first.events, other.events);  // seeds select distinct schedules
  EXPECT_EQ(first.file, other.file);      // but never distinct contents
}

// ---- Trace replay and simulator integration ------------------------------

// Chaos trace replay exposes the client-side corruption tally, and the
// replayed file matches a fault-free replay exactly.
TEST(TraceIntegrity, ChaosReplayCountsDetectedCorruptions) {
  trace::Trace trace = trace::CyclicTrace(128 * 1024, 4, 16, IoOp::kWrite);

  testutil::InProcCluster clean_cluster;
  auto clean = trace::Replay(*clean_cluster.transport, trace, {});
  ASSERT_TRUE(clean.ok()) << clean.status().message();
  EXPECT_EQ(clean->corruptions_detected, 0u);

  testutil::InProcCluster chaos_cluster;
  fault::FaultConfig config;
  config.seed = 29;
  config.frame_corrupt_rate = 0.20;
  fault::FaultInjector injector(config);
  trace::ReplayOptions chaos_options;
  chaos_options.injector = &injector;
  chaos_options.retry.max_attempts = 16;
  chaos_options.retry.initial_backoff = microseconds{1};
  chaos_options.retry.max_backoff = microseconds{64};
  auto chaotic = trace::Replay(*chaos_cluster.transport, trace, chaos_options);
  ASSERT_TRUE(chaotic.ok()) << chaotic.status().message();
  EXPECT_GT(chaotic->faults.frames_corrupted, 0u);
  EXPECT_GT(chaotic->corruptions_detected, 0u);

  Client clean_reader = clean_cluster.MakeClient();
  Client chaos_reader = chaos_cluster.MakeClient();
  auto cfd = clean_reader.Open("/trace/replay");
  auto xfd = chaos_reader.Open("/trace/replay");
  ASSERT_TRUE(cfd.ok());
  ASSERT_TRUE(xfd.ok());
  auto cmeta = clean_reader.Stat(*cfd);
  ASSERT_TRUE(cmeta.ok());
  ByteBuffer clean_bytes(cmeta->size);
  ByteBuffer chaos_bytes(cmeta->size);
  ASSERT_TRUE(clean_reader.Read(*cfd, 0, clean_bytes).ok());
  ASSERT_TRUE(chaos_reader.Read(*xfd, 0, chaos_bytes).ok());
  EXPECT_EQ(clean_bytes, chaos_bytes);
}

// In the simulator, corrupted and truncated frames cost a retransmission
// of virtual time; the run stays bit-reproducible from the seed.
TEST(SimIntegrity, CorruptFramesCostRetransmitsDeterministically) {
  workloads::CyclicConfig wconfig;
  wconfig.total_bytes = 1 * kMiB;
  wconfig.clients = 4;
  wconfig.accesses_per_client = 64;
  simcluster::SimWorkload workload;
  workload.file_regions = [wconfig](Rank r) {
    return std::make_unique<simcluster::VectorStream>(
        workloads::CyclicPattern(wconfig, r).file);
  };

  simcluster::SimClusterConfig clean = simcluster::ChibaCityConfig(4);
  auto baseline = simcluster::RunSimWorkload(clean, io::MethodType::kList,
                                             IoOp::kRead, workload);
  EXPECT_EQ(baseline.faults.total(), 0u);

  simcluster::SimClusterConfig noisy = clean;
  noisy.fault.seed = 19;
  noisy.fault.frame_corrupt_rate = 0.08;
  noisy.fault.frame_truncate_rate = 0.04;
  auto first = simcluster::RunSimWorkload(noisy, io::MethodType::kList,
                                          IoOp::kRead, workload);
  auto second = simcluster::RunSimWorkload(noisy, io::MethodType::kList,
                                           IoOp::kRead, workload);
  EXPECT_GT(first.faults.frames_corrupted, 0u);
  EXPECT_GT(first.faults.frames_truncated, 0u);
  EXPECT_GT(first.faults.retransmits, 0u);
  EXPECT_TRUE(first.faults == second.faults);
  EXPECT_EQ(first.io_seconds, second.io_seconds);
  EXPECT_GT(first.io_seconds, baseline.io_seconds);
}

}  // namespace
}  // namespace pvfs
