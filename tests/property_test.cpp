// Property-based sweeps over randomized inputs: extent algebra, stream
// slicing, striping conservation laws, datatype flattening, and page
// cache invariants.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "io/datatype.hpp"
#include "models/page_cache.hpp"
#include "pvfs/distribution.hpp"

namespace pvfs {
namespace {

ExtentList RandomSortedList(SplitMix64& rng, size_t n, ByteCount max_gap) {
  ExtentList out;
  FileOffset pos = rng.Uniform(0, 1000);
  for (size_t i = 0; i < n; ++i) {
    ByteCount len = rng.Uniform(1, 5000);
    out.push_back(Extent{pos, len});
    pos += len + rng.Uniform(1, max_gap);
  }
  return out;
}

// ---- SliceStream --------------------------------------------------------------

TEST(Property, SliceStreamConservesBytesAndOrder) {
  SplitMix64 rng(1);
  for (int round = 0; round < 200; ++round) {
    ExtentList list = RandomSortedList(rng, rng.Uniform(1, 30), 4000);
    ByteCount total = TotalBytes(list);
    ByteCount skip = rng.Uniform(0, total);
    ByteCount len = rng.Uniform(0, total - skip);
    ExtentList slice = SliceStream(list, skip, len);
    ASSERT_EQ(TotalBytes(slice), len) << "round " << round;
    ASSERT_TRUE(IsSortedDisjoint(slice));
    // Every sliced byte is a byte of the original stream at the right
    // stream position.
    if (!slice.empty()) {
      // First byte of the slice is stream byte `skip`.
      ByteCount walked = 0;
      FileOffset expect = 0;
      for (const Extent& e : list) {
        if (walked + e.length > skip) {
          expect = e.offset + (skip - walked);
          break;
        }
        walked += e.length;
      }
      EXPECT_EQ(slice[0].offset, expect);
    }
  }
}

TEST(Property, SliceStreamClampsAtEnd) {
  ExtentList list{{0, 10}, {100, 10}};
  EXPECT_EQ(TotalBytes(SliceStream(list, 15, 100)), 5u);
  EXPECT_TRUE(SliceStream(list, 20, 5).empty());
  EXPECT_TRUE(SliceStream(list, 0, 0).empty());
}

TEST(Property, CoalesceAdjacentConservesBytes) {
  SplitMix64 rng(2);
  for (int round = 0; round < 200; ++round) {
    ExtentList list = RandomSortedList(rng, rng.Uniform(1, 50), 10);
    // Insert random zero-length and adjacent splits.
    ExtentList noisy;
    for (const Extent& e : list) {
      if (e.length > 2 && rng.Bernoulli(0.5)) {
        ByteCount cut = rng.Uniform(1, e.length - 1);
        noisy.push_back(Extent{e.offset, cut});
        noisy.push_back(Extent{e.offset + cut, e.length - cut});
      } else {
        noisy.push_back(e);
      }
      if (rng.Bernoulli(0.2)) noisy.push_back(Extent{e.end(), 0});
    }
    ExtentList merged = CoalesceAdjacent(noisy);
    EXPECT_EQ(TotalBytes(merged), TotalBytes(list));
    EXPECT_LE(merged.size(), list.size());
  }
}

TEST(Property, NormalizeSetIsIdempotentAndMinimal) {
  SplitMix64 rng(3);
  for (int round = 0; round < 200; ++round) {
    ExtentList raw;
    for (int i = 0; i < 40; ++i) {
      raw.push_back(Extent{rng.Uniform(0, 20000), rng.Uniform(0, 600)});
    }
    ExtentList once = NormalizeSet(raw);
    ExtentList twice = NormalizeSet(once);
    EXPECT_EQ(once, twice);
    EXPECT_TRUE(IsSortedStrictlyDisjoint(once));
  }
}

// ---- Distribution conservation laws --------------------------------------------

TEST(Property, FragmentsPartitionEveryRegionList) {
  SplitMix64 rng(4);
  for (int round = 0; round < 100; ++round) {
    Striping striping{0, static_cast<std::uint32_t>(rng.Uniform(1, 12)),
                      rng.Uniform(1, 5) * 512};
    Distribution dist(striping);
    ExtentList regions = RandomSortedList(rng, rng.Uniform(1, 40), 9000);

    // Fragments cover the stream exactly, in order.
    auto frags = dist.Fragments(regions);
    ByteCount stream = 0;
    for (const Fragment& f : frags) {
      EXPECT_EQ(f.logical_pos, stream);
      stream += f.length;
    }
    EXPECT_EQ(stream, TotalBytes(regions));

    // Per-server fragment lists partition the whole; coalesced runs
    // conserve bytes.
    ByteCount per_server = 0;
    ByteCount runs_bytes = 0;
    for (ServerId s = 0; s < striping.pcount; ++s) {
      for (const Fragment& f : dist.ServerFragments(s, regions)) {
        EXPECT_EQ(f.server, s);
        per_server += f.length;
      }
      for (const Fragment& f : dist.ServerLocalRuns(s, regions)) {
        runs_bytes += f.length;
      }
    }
    EXPECT_EQ(per_server, TotalBytes(regions));
    EXPECT_EQ(runs_bytes, TotalBytes(regions));
  }
}

TEST(Property, LogicalPhysicalBijection) {
  SplitMix64 rng(5);
  for (int round = 0; round < 50; ++round) {
    Striping striping{0, static_cast<std::uint32_t>(rng.Uniform(1, 16)),
                      rng.Uniform(1, 64) * 128};
    Distribution dist(striping);
    // Distinct logical offsets never collide physically.
    for (int i = 0; i < 50; ++i) {
      FileOffset a = rng.Uniform(0, 1 << 26);
      FileOffset b = rng.Uniform(0, 1 << 26);
      if (a == b) continue;
      bool same_server = dist.ServerOf(a) == dist.ServerOf(b);
      bool same_local = dist.LocalOffsetOf(a) == dist.LocalOffsetOf(b);
      EXPECT_FALSE(same_server && same_local)
          << "collision: " << a << " vs " << b;
    }
  }
}

// ---- Datatype flattening --------------------------------------------------------

io::Datatype RandomDatatype(SplitMix64& rng, int depth) {
  if (depth == 0) {
    return io::Datatype::Bytes(rng.Uniform(1, 16));
  }
  io::Datatype child = RandomDatatype(rng, depth - 1);
  switch (rng.Uniform(0, 3)) {
    case 0:
      return io::Datatype::Contiguous(rng.Uniform(1, 4), child);
    case 1:
      return io::Datatype::HVector(
          rng.Uniform(1, 4), rng.Uniform(1, 3),
          static_cast<std::int64_t>(child.extent() *
                                    rng.Uniform(3, 6)),
          child);
    case 2: {
      std::vector<io::Datatype::HIndexedBlock> blocks;
      std::int64_t disp = 0;
      for (std::uint64_t i = 0; i < rng.Uniform(1, 4); ++i) {
        blocks.push_back({disp, rng.Uniform(1, 3)});
        disp += static_cast<std::int64_t>(
            child.extent() * (rng.Uniform(2, 5) + blocks.back().blocklen));
      }
      return io::Datatype::HIndexed(blocks, child);
    }
    default:
      return io::Datatype::Resized(
          child, 0, child.extent() + rng.Uniform(0, 64));
  }
}

TEST(Property, DatatypeFlattenConservesSize) {
  SplitMix64 rng(6);
  for (int round = 0; round < 300; ++round) {
    io::Datatype type = RandomDatatype(rng, static_cast<int>(rng.Uniform(0, 3)));
    std::uint64_t count = rng.Uniform(1, 5);
    ExtentList flat = type.Flatten(rng.Uniform(0, 10000), count);
    EXPECT_EQ(TotalBytes(flat), type.size() * count) << "round " << round;
    EXPECT_LE(flat.size(), type.region_count() * count);
    // Coalescing never produces adjacent extents.
    for (size_t i = 1; i < flat.size(); ++i) {
      EXPECT_NE(flat[i].offset, flat[i - 1].end());
    }
  }
}

TEST(Property, DatatypeExtentBoundsFlatten) {
  SplitMix64 rng(7);
  for (int round = 0; round < 300; ++round) {
    io::Datatype type = RandomDatatype(rng, static_cast<int>(rng.Uniform(0, 3)));
    FileOffset base = 1 << 20;
    ExtentList flat = type.Flatten(base, 1);
    if (flat.empty()) continue;
    auto bound = BoundingExtent(flat);
    // Data lies within [base + lb, base + lb + extent).
    EXPECT_GE(bound->offset,
              base + static_cast<FileOffset>(type.lower_bound()));
    EXPECT_LE(bound->end(), base + type.lower_bound() + type.extent());
  }
}

// ---- Page cache invariants --------------------------------------------------------

TEST(Property, PageCacheInvariantsUnderRandomTraffic) {
  SplitMix64 rng(8);
  models::DiskModel disk;
  models::CacheParams params;
  params.capacity_bytes = 128 * 4096;
  params.dirty_flush_ratio = 0.6;
  models::PageCache cache(params, &disk);

  for (int i = 0; i < 5000; ++i) {
    FileOffset offset = rng.Uniform(0, 4 << 20);
    ByteCount len = rng.Uniform(1, 32768);
    SimTimeNs t = rng.Bernoulli(0.5) ? cache.Read(offset, len)
                                     : cache.Write(offset, len);
    ASSERT_LT(t, 60ull * kNsPerSec) << "absurd service time";
    ASSERT_LE(cache.resident_pages(), 128u);
    ASSERT_LE(cache.dirty_pages(), cache.resident_pages());
  }
  cache.Sync();
  EXPECT_EQ(cache.dirty_pages(), 0u);
  // Accounting identity: hits + misses track requested pages only.
  const auto& stats = cache.stats();
  EXPECT_GT(stats.page_hits + stats.page_misses, 0u);
}

TEST(Property, CacheDeterministicForSameTrace) {
  auto run_trace = [] {
    SplitMix64 rng(99);
    models::DiskModel disk;
    models::PageCache cache({}, &disk);
    SimTimeNs total = 0;
    for (int i = 0; i < 2000; ++i) {
      FileOffset offset = rng.Uniform(0, 1 << 24);
      ByteCount len = rng.Uniform(1, 8192);
      total += rng.Bernoulli(0.3) ? cache.Write(offset, len)
                                  : cache.Read(offset, len);
    }
    return total;
  };
  EXPECT_EQ(run_trace(), run_trace());
}

}  // namespace
}  // namespace pvfs
