#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "pvfs/protocol.hpp"

namespace pvfs {
namespace {

TEST(Protocol, CreateRequestRoundTrip) {
  CreateRequest req{"dir/file.dat", Striping{2, 6, 32768}};
  auto raw = req.Encode();
  EXPECT_EQ(PeekType(raw).value(), MsgType::kCreate);
  WireReader r(raw);
  (void)r.U32();
  auto decoded = CreateRequest::Decode(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->name, "dir/file.dat");
  EXPECT_EQ(decoded->striping, (Striping{2, 6, 32768}));
}

TEST(Protocol, StripingWithZeroPcountRejected) {
  CreateRequest req{"x", Striping{0, 0, 16384}};
  auto raw = req.Encode();
  WireReader r(raw);
  (void)r.U32();
  EXPECT_FALSE(CreateRequest::Decode(r).ok());
}

TEST(Protocol, IoRequestRoundTripWithTrailingData) {
  IoRequest req;
  req.handle = 77;
  req.striping = Striping{0, 8, 16384};
  req.server_index = 3;
  req.op = IoOp::kWrite;
  req.regions = {{0, 100}, {16384, 200}, {99999, 1}};
  req.payload.resize(64);
  FillPattern(req.payload, 1, 0);

  auto raw = req.Encode();
  EXPECT_EQ(PeekType(raw).value(), MsgType::kIo);
  WireReader r(raw);
  (void)r.U32();
  auto decoded = IoRequest::Decode(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->handle, 77u);
  EXPECT_EQ(decoded->server_index, 3u);
  EXPECT_EQ(decoded->op, IoOp::kWrite);
  EXPECT_EQ(decoded->regions, req.regions);
  EXPECT_EQ(decoded->payload, req.payload);
}

TEST(Protocol, IoRequestServerIndexBeyondPcountRejected) {
  IoRequest req;
  req.striping = Striping{0, 4, 16384};
  req.server_index = 4;
  auto raw = req.Encode();
  WireReader r(raw);
  (void)r.U32();
  EXPECT_FALSE(IoRequest::Decode(r).ok());
}

TEST(Protocol, WireBytesMatchesEncodedSize) {
  IoRequest req;
  req.striping = Striping{0, 8, 16384};
  req.regions.assign(17, Extent{0, 8});
  auto raw = req.Encode();
  EXPECT_EQ(raw.size(), IoRequest::WireBytes(17));
}

TEST(Protocol, MaxListRequestFitsOneEthernetFrame) {
  // The paper's design rule (§3.3): a list request with 64 regions of
  // trailing data travels in a single 1500-byte Ethernet frame.
  EXPECT_LE(IoRequest::WireBytes(kMaxListRegions), 1500u);
  // And it is the trailing data that dominates the size.
  EXPECT_GE(IoRequest::WireBytes(kMaxListRegions),
            kMaxListRegions * 16u);
}

TEST(Protocol, IoResponseRoundTrip) {
  IoResponse resp;
  resp.bytes = 1234;
  resp.payload.resize(16, std::byte{0x5A});
  auto decoded = IoResponse::Decode(resp.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->bytes, 1234u);
  EXPECT_EQ(decoded->payload, resp.payload);
}

TEST(Protocol, ResponseEnvelopeCarriesStatus) {
  auto ok_env = EncodeResponse(Status::Ok(), {});
  auto ok = DecodeResponse(ok_env);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->status.ok());

  auto err_env = EncodeResponse(NotFound("gone"), {});
  auto err = DecodeResponse(err_env);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->status.code(), ErrorCode::kNotFound);
  EXPECT_EQ(err->status.message(), "gone");
}

TEST(Protocol, ResponseEnvelopeCarriesBody) {
  MetadataResponse meta{{42, Striping{0, 8, 16384}, 1000}};
  auto env = EncodeResponse(Status::Ok(), meta.Encode());
  auto decoded = DecodeResponse(env);
  ASSERT_TRUE(decoded.ok());
  auto body = MetadataResponse::Decode(decoded->body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body->meta.handle, 42u);
  EXPECT_EQ(body->meta.size, 1000u);
}

TEST(Protocol, PeekTypeRejectsGarbage) {
  WireWriter w;
  w.U32(999);
  EXPECT_FALSE(PeekType(w.data()).ok());
  EXPECT_FALSE(PeekType({}).ok());
}

TEST(Protocol, AllManagerMessagesRoundTrip) {
  {
    auto raw = LookupRequest{"a/b"}.Encode();
    WireReader r(raw);
    (void)r.U32();
    EXPECT_EQ(LookupRequest::Decode(r)->name, "a/b");
  }
  {
    auto raw = RemoveRequest{"gone"}.Encode();
    WireReader r(raw);
    (void)r.U32();
    EXPECT_EQ(RemoveRequest::Decode(r)->name, "gone");
  }
  {
    auto raw = StatRequest{9}.Encode();
    WireReader r(raw);
    (void)r.U32();
    EXPECT_EQ(StatRequest::Decode(r)->handle, 9u);
  }
  {
    auto raw = SetSizeRequest{9, 4096}.Encode();
    WireReader r(raw);
    (void)r.U32();
    auto decoded = SetSizeRequest::Decode(r);
    EXPECT_EQ(decoded->handle, 9u);
    EXPECT_EQ(decoded->size, 4096u);
  }
  {
    auto raw = RemoveDataRequest{5}.Encode();
    WireReader r(raw);
    (void)r.U32();
    EXPECT_EQ(RemoveDataRequest::Decode(r)->handle, 5u);
  }
}

}  // namespace
}  // namespace pvfs
