#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "pvfs/protocol.hpp"

namespace pvfs {
namespace {

TEST(Protocol, CreateRequestRoundTrip) {
  CreateRequest req{"dir/file.dat", Striping{2, 6, 32768}};
  auto raw = req.Encode();
  EXPECT_EQ(PeekType(raw).value(), MsgType::kCreate);
  WireReader r(raw);
  (void)r.U32();
  auto decoded = CreateRequest::Decode(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->name, "dir/file.dat");
  EXPECT_EQ(decoded->options.striping, (Striping{2, 6, 32768}));
  EXPECT_EQ(decoded->options.dist, DistributionSpec::Simple());
}

TEST(Protocol, StripingWithZeroPcountRejected) {
  CreateRequest req{"x", Striping{0, 0, 16384}};
  auto raw = req.Encode();
  WireReader r(raw);
  (void)r.U32();
  EXPECT_FALSE(CreateRequest::Decode(r).ok());
}

TEST(Protocol, IoRequestRoundTripWithTrailingData) {
  IoRequest req;
  req.handle = 77;
  req.striping = Striping{0, 8, 16384};
  req.server_index = 3;
  req.op = IoOp::kWrite;
  req.regions = {{0, 100}, {16384, 200}, {99999, 1}};
  req.payload.resize(64);
  FillPattern(req.payload, 1, 0);

  auto raw = req.Encode();
  EXPECT_EQ(PeekType(raw).value(), MsgType::kIo);
  WireReader r(raw);
  (void)r.U32();
  auto decoded = IoRequest::Decode(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->handle, 77u);
  EXPECT_EQ(decoded->server_index, 3u);
  EXPECT_EQ(decoded->op, IoOp::kWrite);
  EXPECT_EQ(decoded->regions, req.regions);
  EXPECT_EQ(decoded->payload, req.payload);
}

TEST(Protocol, IoRequestServerIndexBeyondPcountRejected) {
  IoRequest req;
  req.striping = Striping{0, 4, 16384};
  req.server_index = 4;
  auto raw = req.Encode();
  WireReader r(raw);
  (void)r.U32();
  EXPECT_FALSE(IoRequest::Decode(r).ok());
}

TEST(Protocol, WireBytesMatchesEncodedSize) {
  IoRequest req;
  req.striping = Striping{0, 8, 16384};
  req.regions.assign(17, Extent{0, 8});
  auto raw = req.Encode();
  EXPECT_EQ(raw.size(), IoRequest::WireBytes(17));
}

TEST(Protocol, MaxListRequestFitsOneEthernetFrame) {
  // The paper's design rule (§3.3): a list request with 64 regions of
  // trailing data travels in a single 1500-byte Ethernet frame.
  EXPECT_LE(IoRequest::WireBytes(kMaxListRegions), 1500u);
  // And it is the trailing data that dominates the size.
  EXPECT_GE(IoRequest::WireBytes(kMaxListRegions),
            kMaxListRegions * 16u);
}

TEST(Protocol, IoResponseRoundTrip) {
  IoResponse resp;
  resp.bytes = 1234;
  resp.payload.resize(16, std::byte{0x5A});
  auto decoded = IoResponse::Decode(resp.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->bytes, 1234u);
  EXPECT_EQ(decoded->payload, resp.payload);
}

TEST(Protocol, ResponseEnvelopeCarriesStatus) {
  auto ok_env = EncodeResponse(Status::Ok(), {});
  auto ok = DecodeResponse(ok_env);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->status.ok());

  auto err_env = EncodeResponse(NotFound("gone"), {});
  auto err = DecodeResponse(err_env);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->status.code(), ErrorCode::kNotFound);
  EXPECT_EQ(err->status.message(), "gone");
}

TEST(Protocol, ResponseEnvelopeCarriesBody) {
  MetadataResponse meta{{42, Striping{0, 8, 16384}, {}, 1000}};
  auto env = EncodeResponse(Status::Ok(), meta.Encode());
  auto decoded = DecodeResponse(env);
  ASSERT_TRUE(decoded.ok());
  auto body = MetadataResponse::Decode(decoded->body);
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body->meta.handle, 42u);
  EXPECT_EQ(body->meta.size, 1000u);
}

TEST(Protocol, PeekTypeRejectsGarbage) {
  WireWriter w;
  w.U32(999);
  EXPECT_FALSE(PeekType(w.data()).ok());
  EXPECT_FALSE(PeekType({}).ok());
}

TEST(Protocol, AllManagerMessagesRoundTrip) {
  {
    auto raw = LookupRequest{"a/b"}.Encode();
    WireReader r(raw);
    (void)r.U32();
    EXPECT_EQ(LookupRequest::Decode(r)->name, "a/b");
  }
  {
    auto raw = RemoveRequest{"gone"}.Encode();
    WireReader r(raw);
    (void)r.U32();
    EXPECT_EQ(RemoveRequest::Decode(r)->name, "gone");
  }
  {
    auto raw = StatRequest{9}.Encode();
    WireReader r(raw);
    (void)r.U32();
    EXPECT_EQ(StatRequest::Decode(r)->handle, 9u);
  }
  {
    auto raw = SetSizeRequest{9, 4096}.Encode();
    WireReader r(raw);
    (void)r.U32();
    auto decoded = SetSizeRequest::Decode(r);
    EXPECT_EQ(decoded->handle, 9u);
    EXPECT_EQ(decoded->size, 4096u);
  }
  {
    auto raw = RemoveDataRequest{5}.Encode();
    WireReader r(raw);
    (void)r.U32();
    EXPECT_EQ(RemoveDataRequest::Decode(r)->handle, 5u);
  }
}

TEST(Protocol, CreateRequestCarriesReplication) {
  CreateRequest req{"rep", {Striping{0, 4, 16384}, ReplicationConfig{3}}};
  auto raw = req.Encode();
  WireReader r(raw);
  (void)r.U32();
  auto decoded = CreateRequest::Decode(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->options.replication, (ReplicationConfig{3}));
}

TEST(Protocol, MetadataRoundTripsReplication) {
  MetadataResponse resp;
  resp.meta.handle = 42;
  resp.meta.striping = Striping{1, 5, 65536};
  resp.meta.size = 123456;
  resp.meta.replication = ReplicationConfig{2};
  auto raw = resp.Encode();
  auto decoded = MetadataResponse::Decode(raw);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->meta, resp.meta);
}

TEST(Protocol, ReplicaSumsRoundTrip) {
  {
    auto raw = ReplicaSumsRequest{99}.Encode();
    EXPECT_EQ(PeekType(raw).value(), MsgType::kReplicaSums);
    WireReader r(raw);
    (void)r.U32();
    EXPECT_EQ(ReplicaSumsRequest::Decode(r)->handle, 99u);
  }
  {
    ReplicaSumsResponse resp;
    resp.size = 1 << 20;
    resp.chunks = {{0, 0xDEADBEEF, true}, {3, 0x12345678, false}};
    auto raw = resp.Encode();
    auto decoded = ReplicaSumsResponse::Decode(raw);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->size, 1u << 20);
    EXPECT_EQ(decoded->chunks, resp.chunks);
  }
}

TEST(Protocol, ReplicaSumsResponseRejectsOverclaimedCount) {
  // A hostile frame claiming more entries than its bytes can hold must be
  // rejected before any allocation sized from the claim.
  ReplicaSumsResponse resp;
  resp.chunks = {{0, 1, true}};
  auto raw = resp.Encode();
  // Patch the count field (after u64 size) to a huge value.
  raw[8] = std::byte{0xFF};
  raw[9] = std::byte{0xFF};
  raw[10] = std::byte{0xFF};
  raw[11] = std::byte{0xFF};
  EXPECT_FALSE(ReplicaSumsResponse::Decode(raw).ok());
}

TEST(Protocol, RepairRoundTrip) {
  {
    RepairRequest req;
    req.handle = 7;
    req.op = RepairOp::kFetch;
    req.offset = 262144;
    req.length = 262144;
    auto raw = req.Encode();
    EXPECT_EQ(PeekType(raw).value(), MsgType::kRepair);
    WireReader r(raw);
    (void)r.U32();
    auto decoded = RepairRequest::Decode(r);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->op, RepairOp::kFetch);
    EXPECT_EQ(decoded->offset, 262144u);
    EXPECT_EQ(decoded->length, 262144u);
  }
  {
    RepairRequest req;
    req.handle = 7;
    req.op = RepairOp::kApply;
    req.offset = 0;
    req.payload.resize(128);
    FillPattern(req.payload, 9, 0);
    auto raw = req.Encode();
    WireReader r(raw);
    (void)r.U32();
    auto decoded = RepairRequest::Decode(r);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->op, RepairOp::kApply);
    EXPECT_EQ(decoded->payload, req.payload);
  }
  {
    RepairResponse resp;
    resp.payload.resize(64);
    FillPattern(resp.payload, 4, 0);
    auto raw = resp.Encode();
    auto decoded = RepairResponse::Decode(raw);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->payload, resp.payload);
  }
}

// ---- Layout wire format (DistributionSpec tagging) ----------------------

TEST(ProtocolDist, SimpleSpecEncodesExactlyLegacyStripingBytes) {
  // The default layout must be indistinguishable on the wire from the
  // pre-DistributionSpec protocol (fig09-17 frames bit-identical).
  const Striping s{2, 6, 32768};
  WireWriter legacy;
  EncodeStriping(legacy, s);
  WireWriter tagged;
  EncodeDistributionSpec(tagged, s, DistributionSpec::Simple());
  EXPECT_EQ(legacy.data().size(), tagged.data().size());
  EXPECT_TRUE(std::equal(legacy.data().begin(), legacy.data().end(),
                         tagged.data().begin()));
}

TEST(ProtocolDist, LegacyFrameDecodesAsSimpleStripe) {
  WireWriter w;
  EncodeStriping(w, Striping{1, 4, 8192});
  WireReader r(w.data());
  auto layout = DecodeDistributionSpec(r);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->striping, (Striping{1, 4, 8192}));
  EXPECT_EQ(layout->dist, DistributionSpec::Simple());
}

TEST(ProtocolDist, TaggedRoundTripEveryKind) {
  const Striping s{0, 8, 16384};
  const DistributionSpec specs[] = {
      DistributionSpec::TwoD(2, 4),
      DistributionSpec::Block(1 << 20),
      DistributionSpec::GroupCyclic(8),
  };
  for (const DistributionSpec& spec : specs) {
    WireWriter w;
    EncodeDistributionSpec(w, s, spec);
    WireReader r(w.data());
    auto layout = DecodeDistributionSpec(r);
    ASSERT_TRUE(layout.ok()) << DistKindName(spec.kind);
    EXPECT_EQ(layout->striping, s) << DistKindName(spec.kind);
    EXPECT_EQ(layout->dist, spec) << DistKindName(spec.kind);
    EXPECT_EQ(r.remaining(), 0u) << DistKindName(spec.kind);
  }
}

TEST(ProtocolDist, OldDecoderRejectsTaggedFrameCleanly) {
  // An old peer (DecodeStriping) reading a new-layout frame must fail with
  // a protocol error — never decode a wrong striping and misplace bytes.
  WireWriter w;
  EncodeDistributionSpec(w, Striping{0, 8, 16384},
                         DistributionSpec::TwoD(2, 4));
  WireReader r(w.data());
  auto striping = DecodeStriping(r);
  EXPECT_FALSE(striping.ok());
  EXPECT_EQ(striping.status().code(), ErrorCode::kProtocol);
}

TEST(ProtocolDist, TaggedSimpleKindRejectedAsNonCanonical) {
  // kind 0 inside a tagged frame would give the simple layout two wire
  // forms; the decoder insists on the legacy form.
  WireWriter w;
  w.U32(0);   // base
  w.U32(0);   // sentinel pcount
  w.U8(kDistWireVersion);
  w.U8(0);    // kSimpleStripe — must be rejected
  w.U32(1);
  w.U32(1);
  w.U64(0);
  w.U32(8);
  w.U64(16384);
  WireReader r(w.data());
  EXPECT_FALSE(DecodeDistributionSpec(r).ok());
}

TEST(ProtocolDist, HostileTaggedFramesRejected) {
  struct Shape {
    const char* what;
    std::uint8_t version;
    std::uint8_t kind;
    std::uint32_t groups;
    std::uint32_t depth;
    std::uint64_t extent;
    std::uint32_t pcount;
    std::uint64_t ssize;
  };
  const Shape bad[] = {
      {"unknown version", 9, 1, 2, 4, 0, 8, 16384},
      {"unknown kind", kDistWireVersion, 7, 1, 1, 0, 8, 16384},
      {"groups not dividing pcount", kDistWireVersion, 1, 3, 4, 0, 8, 16384},
      {"zero groups", kDistWireVersion, 1, 0, 4, 0, 8, 16384},
      {"groups beyond pcount", kDistWireVersion, 1, 16, 4, 0, 8, 16384},
      {"zero depth twod", kDistWireVersion, 1, 2, 0, 0, 8, 16384},
      {"block with zero extent", kDistWireVersion, 2, 1, 1, 0, 8, 16384},
      {"gcyclic zero depth", kDistWireVersion, 3, 1, 0, 0, 8, 16384},
      {"zero pcount", kDistWireVersion, 1, 2, 4, 0, 0, 16384},
      {"zero ssize", kDistWireVersion, 1, 2, 4, 0, 8, 0},
  };
  for (const Shape& shape : bad) {
    WireWriter w;
    w.U32(0);
    w.U32(0);  // sentinel
    w.U8(shape.version);
    w.U8(shape.kind);
    w.U32(shape.groups);
    w.U32(shape.depth);
    w.U64(shape.extent);
    w.U32(shape.pcount);
    w.U64(shape.ssize);
    WireReader r(w.data());
    EXPECT_FALSE(DecodeDistributionSpec(r).ok()) << shape.what;
  }
}

TEST(ProtocolDist, TruncatedTaggedFrameRejected) {
  WireWriter w;
  EncodeDistributionSpec(w, Striping{0, 8, 16384},
                         DistributionSpec::Block(1 << 20));
  auto full = w.Take();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    std::span<const std::byte> head(full.data(), cut);
    WireReader r(head);
    EXPECT_FALSE(DecodeDistributionSpec(r).ok()) << "cut=" << cut;
  }
}

TEST(ProtocolDist, CreateRequestRoundTripsDistributionSpec) {
  CreateRequest req{
      "twod", {Striping{0, 8, 16384}, DistributionSpec::TwoD(4, 2)}};
  auto raw = req.Encode();
  WireReader r(raw);
  (void)r.U32();
  auto decoded = CreateRequest::Decode(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->options.dist, DistributionSpec::TwoD(4, 2));
  EXPECT_EQ(decoded->options.striping, (Striping{0, 8, 16384}));
}

TEST(ProtocolDist, MetadataRoundTripsDistributionSpec) {
  MetadataResponse resp;
  resp.meta.handle = 7;
  resp.meta.striping = Striping{0, 4, 16384};
  resp.meta.dist = DistributionSpec::GroupCyclic(16);
  resp.meta.size = 4096;
  resp.meta.epoch = 3;
  auto decoded = MetadataResponse::Decode(resp.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->meta, resp.meta);
}

TEST(ProtocolDist, IoRequestRoundTripsDistributionSpec) {
  IoRequest req;
  req.handle = 5;
  req.striping = Striping{0, 8, 16384};
  req.dist = DistributionSpec::Block(1 << 16);
  req.server_index = 2;
  req.op = IoOp::kRead;
  req.regions = {{0, 4096}};
  auto raw = req.Encode();
  WireReader r(raw);
  (void)r.U32();
  auto decoded = IoRequest::Decode(r);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->dist, (DistributionSpec::Block(1 << 16)));
  EXPECT_EQ(decoded->striping, req.striping);
  EXPECT_EQ(decoded->regions, req.regions);
}

}  // namespace
}  // namespace pvfs
