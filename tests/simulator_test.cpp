#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace pvfs::sim {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(300, [&] { order.push_back(3); });
  sim.Schedule(100, [&] { order.push_back(1); });
  sim.Schedule(200, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 300u);
  EXPECT_EQ(sim.EventsProcessed(), 3u);
}

TEST(Simulator, TiesBreakInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(50, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] {
    ++fired;
    sim.Schedule(10, [&] {
      ++fired;
      sim.Schedule(10, [&] { ++fired; });
    });
  });
  sim.Run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.Now(), 30u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(100, [&] { ++fired; });
  sim.Schedule(200, [&] { ++fired; });
  sim.RunUntil(150);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 100u);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimTask, AwaitedChildRunsToCompletion) {
  Simulator sim;
  std::vector<int> trace;

  auto child = [&]() -> SimTask {
    trace.push_back(1);
    co_await sim.Delay(50);
    trace.push_back(2);
  };
  auto parent = [&]() -> SimTask {
    co_await child();
    trace.push_back(3);
  };
  Spawn(sim, parent());
  sim.Run();
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 50u);
}

TEST(SimTask, SpawnedTasksInterleaveByVirtualTime) {
  Simulator sim;
  std::vector<std::pair<int, SimTimeNs>> trace;
  auto proc = [&](int id, SimTimeNs step) -> SimTask {
    for (int i = 0; i < 3; ++i) {
      co_await sim.Delay(step);
      trace.push_back({id, sim.Now()});
    }
  };
  Spawn(sim, proc(1, 10));
  Spawn(sim, proc(2, 25));
  sim.Run();
  ASSERT_EQ(trace.size(), 6u);
  EXPECT_EQ(trace[0], (std::pair<int, SimTimeNs>{1, 10}));
  EXPECT_EQ(trace[2], (std::pair<int, SimTimeNs>{2, 25}));
  EXPECT_EQ(trace[5], (std::pair<int, SimTimeNs>{2, 75}));
}

TEST(SimTask, UnfinishedDetachedFrameReclaimedAtTeardown) {
  // A task waiting on a trigger that never fires must not leak (ASAN-able).
  Simulator sim;
  auto trigger = std::make_unique<Trigger>(sim);
  bool resumed = false;
  auto waiter = [&]() -> SimTask {
    co_await trigger->Wait();
    resumed = true;
  };
  Spawn(sim, waiter());
  sim.Run();
  EXPECT_FALSE(resumed);
  // Simulator destructor reclaims the suspended frame.
}

TEST(Trigger, WaitersResumeOnFire) {
  Simulator sim;
  Trigger trigger(sim);
  int resumed = 0;
  auto waiter = [&]() -> SimTask {
    co_await trigger.Wait();
    ++resumed;
  };
  Spawn(sim, waiter());
  Spawn(sim, waiter());
  sim.Schedule(100, [&] { trigger.Fire(); });
  sim.Run();
  EXPECT_EQ(resumed, 2);
  EXPECT_TRUE(trigger.fired());
}

TEST(Trigger, WaitAfterFireDoesNotSuspend) {
  Simulator sim;
  Trigger trigger(sim);
  trigger.Fire();
  bool done = false;
  auto waiter = [&]() -> SimTask {
    co_await trigger.Wait();
    done = true;
  };
  Spawn(sim, waiter());
  sim.Run();
  EXPECT_TRUE(done);
}

TEST(CountdownLatch, FiresAtZero) {
  Simulator sim;
  CountdownLatch latch(sim, 3);
  bool released = false;
  auto waiter = [&]() -> SimTask {
    co_await latch.Wait();
    released = true;
  };
  Spawn(sim, waiter());
  sim.Schedule(10, [&] { latch.CountDown(); });
  sim.Schedule(20, [&] { latch.CountDown(); });
  sim.RunUntil(25);
  EXPECT_FALSE(released);
  sim.Schedule(10, [&] { latch.CountDown(); });
  sim.Run();
  EXPECT_TRUE(released);
}

TEST(CountdownLatch, ZeroCountIsImmediatelyOpen) {
  Simulator sim;
  CountdownLatch latch(sim, 0);
  bool released = false;
  auto waiter = [&]() -> SimTask {
    co_await latch.Wait();
    released = true;
  };
  Spawn(sim, waiter());
  sim.Run();
  EXPECT_TRUE(released);
}

TEST(Resource, SerializesHolders) {
  Simulator sim;
  Resource res(sim, 1);
  std::vector<std::pair<int, SimTimeNs>> done;
  auto user = [&](int id) -> SimTask {
    co_await res.Acquire();
    co_await sim.Delay(100);
    res.Release();
    done.push_back({id, sim.Now()});
  };
  Spawn(sim, user(1));
  Spawn(sim, user(2));
  Spawn(sim, user(3));
  sim.Run();
  ASSERT_EQ(done.size(), 3u);
  // FIFO: completion at 100, 200, 300.
  EXPECT_EQ(done[0], (std::pair<int, SimTimeNs>{1, 100}));
  EXPECT_EQ(done[1], (std::pair<int, SimTimeNs>{2, 200}));
  EXPECT_EQ(done[2], (std::pair<int, SimTimeNs>{3, 300}));
}

TEST(Resource, MultipleSlotsAllowParallelHolders) {
  Simulator sim;
  Resource res(sim, 2);
  std::vector<SimTimeNs> done;
  auto user = [&]() -> SimTask {
    co_await res.Acquire();
    co_await sim.Delay(100);
    res.Release();
    done.push_back(sim.Now());
  };
  for (int i = 0; i < 4; ++i) Spawn(sim, user());
  sim.Run();
  ASSERT_EQ(done.size(), 4u);
  EXPECT_EQ(done[0], 100u);
  EXPECT_EQ(done[1], 100u);
  EXPECT_EQ(done[2], 200u);
  EXPECT_EQ(done[3], 200u);
}

TEST(SimBarrier, AllPartiesLeaveTogether) {
  Simulator sim;
  SimBarrier barrier(sim, 3);
  std::vector<SimTimeNs> leave;
  auto proc = [&](SimTimeNs arrive_at) -> SimTask {
    co_await sim.Delay(arrive_at);
    co_await barrier.ArriveAndWait();
    leave.push_back(sim.Now());
  };
  Spawn(sim, proc(10));
  Spawn(sim, proc(50));
  Spawn(sim, proc(90));
  sim.Run();
  ASSERT_EQ(leave.size(), 3u);
  for (SimTimeNs t : leave) EXPECT_EQ(t, 90u);
}

TEST(SimBarrier, IsCyclic) {
  Simulator sim;
  SimBarrier barrier(sim, 2);
  int rounds_done = 0;
  auto proc = [&](SimTimeNs step) -> SimTask {
    for (int r = 0; r < 3; ++r) {
      co_await sim.Delay(step);
      co_await barrier.ArriveAndWait();
    }
    ++rounds_done;
  };
  Spawn(sim, proc(10));
  Spawn(sim, proc(17));
  sim.Run();
  EXPECT_EQ(rounds_done, 2);
}

TEST(Stats, AccumulatorMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Stats, EmptyAccumulatorIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.min(), 0.0);
  EXPECT_EQ(acc.max(), 0.0);
}

TEST(Stats, HistogramBuckets) {
  Histogram h({1.0, 10.0, 100.0});
  h.Add(0.5);
  h.Add(5.0);
  h.Add(50.0);
  h.Add(500.0);
  h.Add(7.0);
  ASSERT_EQ(h.counts().size(), 4u);
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[1], 2u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.counts()[3], 1u);  // overflow
  EXPECT_EQ(h.summary().count(), 5u);
}

}  // namespace
}  // namespace pvfs::sim
