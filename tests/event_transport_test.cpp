// Event-driven transport tests: incremental frame reassembly under
// adversarial byte splits, interleaved multiplexed requests on one
// connection, request-id correlation, slow-reader backpressure, clean
// shutdown with requests in flight, and start/stop races — the
// deterministic proof obligations of the epoll server and the
// multiplexed client.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <barrier>
#include <chrono>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/bytes.hpp"
#include "common/wire.hpp"
#include "fault/fault.hpp"
#include "fault/fault_transport.hpp"
#include "net/framing.hpp"
#include "net/mux_transport.hpp"
#include "net/socket_transport.hpp"
#include "pvfs/admission.hpp"
#include "pvfs/client.hpp"

namespace pvfs::net {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

constexpr Striping kDefault{0, 4, 16384};  // matches the 4-iod clusters here

std::vector<std::byte> Pattern(std::size_t n, std::uint64_t seed) {
  std::vector<std::byte> out(n);
  FillPattern(out, seed, 0);
  return out;
}

/// Spin until `done` holds or ~2 s elapse; returns the final verdict.
template <typename F>
bool EventuallyTrue(F done) {
  for (int i = 0; i < 2000; ++i) {
    if (done()) return true;
    std::this_thread::sleep_for(milliseconds(1));
  }
  return done();
}

// ---- FrameDecoder ----------------------------------------------------------

TEST(FrameDecoder, ByteAtATimeReassembly) {
  std::vector<std::vector<std::byte>> payloads = {
      Pattern(1, 1), Pattern(300, 2), Pattern(4096, 3)};
  std::vector<std::byte> stream;
  for (const auto& p : payloads) {
    auto framed = EncodeFrame(p);
    stream.insert(stream.end(), framed.begin(), framed.end());
  }

  FrameDecoder decoder;
  std::vector<std::vector<std::byte>> got;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(decoder.Feed({&stream[i], 1}).ok());
    while (auto frame = decoder.Next()) got.push_back(std::move(*frame));
    // Mid-frame the partial flag must report the buffered fragment.
    if (got.size() < payloads.size() && i + 1 < stream.size()) {
      EXPECT_TRUE(decoder.has_partial() || decoder.has_ready() ||
                  got.size() > 0 || i < kFrameHeaderBytes);
    }
  }
  ASSERT_EQ(got.size(), payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(got[i], payloads[i]) << "frame " << i;
  }
  EXPECT_EQ(decoder.frames_decoded(), payloads.size());
  EXPECT_FALSE(decoder.has_partial());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameDecoder, EverySplitPointOfATwoFrameStream) {
  auto a = Pattern(50, 7);
  auto b = Pattern(9, 8);
  std::vector<std::byte> stream = EncodeFrame(a);
  auto fb = EncodeFrame(b);
  stream.insert(stream.end(), fb.begin(), fb.end());

  for (std::size_t split = 0; split <= stream.size(); ++split) {
    FrameDecoder decoder;
    ASSERT_TRUE(decoder.Feed({stream.data(), split}).ok());
    ASSERT_TRUE(
        decoder.Feed({stream.data() + split, stream.size() - split}).ok());
    auto first = decoder.Next();
    auto second = decoder.Next();
    ASSERT_TRUE(first.has_value()) << "split " << split;
    ASSERT_TRUE(second.has_value()) << "split " << split;
    EXPECT_EQ(*first, a) << "split " << split;
    EXPECT_EQ(*second, b) << "split " << split;
    EXPECT_FALSE(decoder.Next().has_value());
  }
}

TEST(FrameDecoder, ZeroLengthFramesAreDelivered) {
  FrameDecoder decoder;
  std::vector<std::byte> empty;
  auto framed = EncodeFrame(empty);
  ASSERT_TRUE(decoder.Feed(framed).ok());
  auto frame = decoder.Next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_TRUE(frame->empty());
  EXPECT_EQ(decoder.frames_decoded(), 1u);
}

TEST(FrameDecoder, HostileLengthRejectedBeforeAllocation) {
  // A length prefix claiming 4 GiB must fail the moment the header
  // completes — no payload allocation, no waiting for bytes that will
  // never come.
  FrameDecoder decoder;
  unsigned char header[kFrameHeaderBytes] = {0xff, 0xff, 0xff, 0xff};
  Status fed = decoder.Feed(
      {reinterpret_cast<const std::byte*>(header), sizeof header});
  EXPECT_EQ(fed.code(), ErrorCode::kProtocol);
  EXPECT_TRUE(decoder.failed());
  EXPECT_LE(decoder.buffered_bytes(), kFrameHeaderBytes);
  // A failed decoder stays failed.
  std::byte more[16] = {};
  EXPECT_FALSE(decoder.Feed(more).ok());
}

TEST(FrameDecoder, InRangeButOversizeLengthNeverBuffersThePayload) {
  // 200 MiB claimed against a 1 MiB limit: rejected at header time even
  // though the value parses as a plausible u32.
  FrameDecoder decoder(1u << 20);
  auto framed = EncodeFrame(Pattern(8, 1));
  framed[2] = std::byte{0x80};  // length byte 2: now claims ~8 MiB
  EXPECT_FALSE(decoder.Feed(framed).ok());
  EXPECT_TRUE(decoder.failed());
  EXPECT_LE(decoder.buffered_bytes(), kFrameHeaderBytes);
}

// ---- Event server: partial delivery + interleaving -------------------------

TEST(EventTransport, PartialFrameDeliveryByteAtATime) {
  obs::Registry registry;
  SocketServer::Options options;
  options.registry = &registry;
  options.metric_labels = {{"server", "t"}};
  auto server = SocketServer::Start(
      0,
      [](std::span<const std::byte> req) {
        return std::vector<std::byte>(req.begin(), req.end());
      },
      nullptr, 0, options);
  ASSERT_TRUE(server.ok());

  auto fd = ConnectSocket({"127.0.0.1", (*server)->port()},
                          milliseconds(2000), /*arm_receive_timeout=*/true);
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(EventuallyTrue([&] { return (*server)->open_connections() == 1; }));

  // Trickle an entire frame one byte per send: the server must reassemble
  // across dozens of readiness events.
  auto payload = Pattern(257, 42);
  auto framed = EncodeFrame(payload);
  for (std::size_t i = 0; i < framed.size(); ++i) {
    ASSERT_EQ(::send(*fd, &framed[i], 1, MSG_NOSIGNAL), 1);
  }
  auto reply = RecvFrame(*fd);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, payload);

  EXPECT_GT(registry.Counter("iod.transport.partial_frames",
                             {{"server", "t"}})
                .value(),
            0u);
  EXPECT_GT(registry.Counter("iod.transport.readable_events",
                             {{"server", "t"}})
                .value(),
            0u);

  ::close(*fd);
  EXPECT_TRUE(EventuallyTrue([&] { return (*server)->open_connections() == 0; }));
  EXPECT_EQ((*server)->connections_served(), 1u);
}

TEST(EventTransport, InterleavedPipelinedRequestsCorrelate) {
  // One connection, many logical requests in flight: the service answers
  // under the request's own id and every pipelined reply must land with
  // the right correlation id and the right body.
  constexpr int kRequests = 24;
  SocketServer::Options options;
  options.worker_threads = 2;
  options.correlate_responses = true;
  auto server = SocketServer::Start(
      0,
      [](std::span<const std::byte> req) -> std::vector<std::byte> {
        auto opened = OpenFrameWithId(req);
        if (!opened.ok()) return SealFrame({});
        std::vector<std::byte> body(opened->payload.begin(),
                                    opened->payload.end());
        std::reverse(body.begin(), body.end());
        return SealFrameWithId(std::move(body), opened->request_id);
      },
      nullptr, 0, options);
  ASSERT_TRUE(server.ok());

  auto fd = ConnectSocket({"127.0.0.1", (*server)->port()},
                          milliseconds(2000), /*arm_receive_timeout=*/true);
  ASSERT_TRUE(fd.ok());

  std::map<std::uint64_t, std::vector<std::byte>> bodies;
  for (int i = 0; i < kRequests; ++i) {
    const std::uint64_t id = 1000 + i;
    bodies[id] = Pattern(64 + i * 13, id);
    auto sealed = SealFrameWithId(bodies[id], id);
    ASSERT_TRUE(SendFrame(*fd, sealed).ok());  // pipelined: no read yet
  }
  std::set<std::uint64_t> seen;
  for (int i = 0; i < kRequests; ++i) {
    auto reply = RecvFrame(*fd);
    ASSERT_TRUE(reply.ok());
    auto opened = OpenFrameWithId(*reply);
    ASSERT_TRUE(opened.ok());
    auto it = bodies.find(opened->request_id);
    ASSERT_NE(it, bodies.end()) << "unknown reply id " << opened->request_id;
    EXPECT_TRUE(seen.insert(opened->request_id).second)
        << "duplicate reply for id " << opened->request_id;
    std::vector<std::byte> expect = it->second;
    std::reverse(expect.begin(), expect.end());
    EXPECT_TRUE(std::equal(opened->payload.begin(), opened->payload.end(),
                           expect.begin(), expect.end()))
        << "body mismatch for id " << opened->request_id;
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kRequests));
  ::close(*fd);
}

TEST(EventTransport, ResealStampsRequestIdOnAmbientlessReplies) {
  // The service thread has no ambient request id (it seals with id 0, as
  // a handler does when the request failed its CRC before the id could be
  // adopted); correlate_responses must re-seal the reply so it still
  // reaches the right waiter.
  SocketServer::Options options;
  options.correlate_responses = true;
  auto server = SocketServer::Start(
      0,
      [](std::span<const std::byte>) { return SealFrame(Pattern(16, 5)); },
      nullptr, 0, options);
  ASSERT_TRUE(server.ok());

  auto fd = ConnectSocket({"127.0.0.1", (*server)->port()},
                          milliseconds(2000), /*arm_receive_timeout=*/true);
  ASSERT_TRUE(fd.ok());
  auto sealed = SealFrameWithId(Pattern(32, 6), 7777);
  ASSERT_TRUE(SendFrame(*fd, sealed).ok());
  auto reply = RecvFrame(*fd);
  ASSERT_TRUE(reply.ok());
  auto opened = OpenFrameWithId(*reply);
  ASSERT_TRUE(opened.ok());  // re-seal must produce a valid CRC
  EXPECT_EQ(opened->request_id, 7777u);
  ::close(*fd);
}

// ---- Backpressure ----------------------------------------------------------

TEST(EventTransport, SlowReaderBackpressureBoundsWriteBuffer) {
  // 64 pipelined requests, each answered with 32 KiB, against a 64 KiB
  // write-buffer cap and an in-flight budget of 4 — while the client
  // refuses to read. Unbounded buffering would reach ~2 MiB; the pump
  // must park frames in the decoder and hold the high-water mark near
  // cap + inflight * response.
  constexpr int kRequests = 64;
  constexpr std::size_t kResponseBytes = 32 * 1024;
  SocketServer::Options options;
  options.worker_threads = 1;
  options.max_inflight_per_connection = 4;
  options.max_write_buffer_bytes = 64 * 1024;
  const auto big = Pattern(kResponseBytes, 11);
  auto server = SocketServer::Start(
      0, [big](std::span<const std::byte>) { return big; }, nullptr, 0,
      options);
  ASSERT_TRUE(server.ok());

  auto fd = ConnectSocket({"127.0.0.1", (*server)->port()},
                          milliseconds(5000), /*arm_receive_timeout=*/true);
  ASSERT_TRUE(fd.ok());
  auto request = Pattern(32, 12);
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(SendFrame(*fd, request).ok());
  }
  // Let the server run as far ahead as its budgets allow.
  std::this_thread::sleep_for(milliseconds(300));
  const std::uint64_t high_water = (*server)->max_write_buffered();
  // Structural bound: cap, plus one response per in-flight slot that can
  // complete after the cap is crossed, plus framing slack.
  EXPECT_LE(high_water,
            64 * 1024 + 5 * (kResponseBytes + 64) + 4096)
      << "backpressure failed to bound the response buffer";
  EXPECT_LT(high_water, static_cast<std::uint64_t>(kRequests) *
                            kResponseBytes / 2);

  // Now drain: every reply still arrives, in order, intact.
  for (int i = 0; i < kRequests; ++i) {
    auto reply = RecvFrame(*fd);
    ASSERT_TRUE(reply.ok()) << "reply " << i;
    ASSERT_EQ(reply->size(), kResponseBytes) << "reply " << i;
    EXPECT_EQ(*reply, big) << "reply " << i;
  }
  ::close(*fd);
}

// ---- Shutdown --------------------------------------------------------------

TEST(EventTransport, CleanShutdownDrainsInflightRequests) {
  // Destroy the server while requests are mid-service: the destructor
  // must join the poller and let the workers drain every dispatched
  // request so admission accounting closes (depth back to zero), without
  // deadlock and without delivering the orphaned responses.
  obs::Registry registry;
  AdmissionController admission(0, /*max_depth=*/0, &registry);
  std::atomic<int> served{0};
  SocketServer::Options options;
  options.worker_threads = 2;
  auto server = SocketServer::Start(
      0,
      [&served](std::span<const std::byte> req) {
        std::this_thread::sleep_for(milliseconds(5));
        ++served;
        return std::vector<std::byte>(req.begin(), req.end());
      },
      &admission, 0, options);
  ASSERT_TRUE(server.ok());

  auto fd = ConnectSocket({"127.0.0.1", (*server)->port()},
                          milliseconds(2000), /*arm_receive_timeout=*/true);
  ASSERT_TRUE(fd.ok());
  auto request = Pattern(128, 21);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(SendFrame(*fd, request).ok());
  }
  ASSERT_TRUE(EventuallyTrue([&] { return served.load() >= 1; }));

  server->reset();  // in-flight requests exist right now

  EXPECT_EQ(admission.depth(), 0) << "admission queue not drained";
  EXPECT_EQ(admission.admitted(), static_cast<std::uint64_t>(served.load()))
      << "every admitted request must have been serviced by the drain";
  ::close(*fd);
}

TEST(EventTransport, RepeatedStartStopStress) {
  // The blocking-accept transport could race Stop() against ::accept;
  // with the listen fd in the epoll set, start/stop must be safe at any
  // frequency, with and without live connections.
  for (int i = 0; i < 30; ++i) {
    auto server = SocketServer::Start(
        0, [](std::span<const std::byte> req) {
          return std::vector<std::byte>(req.begin(), req.end());
        });
    ASSERT_TRUE(server.ok());
    // Immediately destroyed: the poller may not even have run yet.
  }
  for (int i = 0; i < 30; ++i) {
    auto server = SocketServer::Start(
        0, [](std::span<const std::byte> req) {
          return std::vector<std::byte>(req.begin(), req.end());
        });
    ASSERT_TRUE(server.ok());
    auto fd = ConnectSocket({"127.0.0.1", (*server)->port()},
                            milliseconds(2000),
                            /*arm_receive_timeout=*/true);
    ASSERT_TRUE(fd.ok());
    auto payload = Pattern(64, i);
    ASSERT_TRUE(SendFrame(*fd, payload).ok());
    auto reply = RecvFrame(*fd);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(*reply, payload);
    ::close(*fd);
    // Server destroyed with the connection possibly still registered.
  }
}

// ---- Multiplexed client ----------------------------------------------------

TEST(EventMux, SharedTransportConcurrentClients) {
  constexpr int kThreads = 4;
  auto cluster = SocketCluster::Start(4);
  ASSERT_TRUE(cluster.ok());
  ClientConfig config;
  config.multiplex = true;
  config.call_timeout = milliseconds(5000);
  config.max_inflight = 64;
  auto transport = (*cluster)->Connect(config);

  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Client client(transport.get());
        auto fd = client.Create("/mux/file" + std::to_string(t), kDefault);
        if (!fd.ok()) {
          ++failures;
          return;
        }
        ByteBuffer data(200000);
        FillPattern(data, 40 + t, 0);
        ByteBuffer back(data.size());
        if (!client.Write(*fd, 0, data).ok() ||
            !client.Read(*fd, 0, back).ok() || back != data) {
          ++failures;
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);

  auto* mux = dynamic_cast<MuxSocketTransport*>(transport.get());
  ASSERT_NE(mux, nullptr);
  auto stats = mux->stats();
  EXPECT_GT(stats.requests, 0u);
  EXPECT_EQ(stats.responses_matched, stats.requests)
      << "every request must get its own correlated reply";
  EXPECT_EQ(stats.responses_dropped, 0u);
}

TEST(EventMux, TimeoutDropsLateReplyWithoutPoisoningTheStream) {
  // First request stalls past the client deadline; the waiter gives up,
  // the late reply is counted and dropped, and the next exchange on the
  // same connection is unaffected.
  std::atomic<int> calls{0};
  auto server = SocketServer::Start(
      0, [&calls](std::span<const std::byte> req) {
        if (calls.fetch_add(1) == 0) {
          std::this_thread::sleep_for(milliseconds(120));
        }
        return std::vector<std::byte>(req.begin(), req.end());
      });
  ASSERT_TRUE(server.ok());

  ClientConfig config;
  config.multiplex = true;
  config.call_timeout = milliseconds(25);
  MuxSocketTransport mux({"127.0.0.1", (*server)->port()}, {}, config);

  auto slow = SealFrameWithId(Pattern(16, 1), 101);
  auto timed_out = mux.Call(Endpoint::ManagerNode(), slow);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), ErrorCode::kDeadlineExceeded);

  // Let the stalled reply arrive (and be dropped).
  ASSERT_TRUE(EventuallyTrue(
      [&] { return mux.stats().responses_dropped >= 1; }));

  auto fast = SealFrameWithId(Pattern(16, 2), 102);
  auto reply = mux.Call(Endpoint::ManagerNode(), fast);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, fast);
  auto stats = mux.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.responses_matched, 1u);
  EXPECT_GE(stats.responses_dropped, 1u);
}

TEST(EventMux, ReconnectsAfterServerRestart) {
  auto echo = [](std::span<const std::byte> req) {
    return std::vector<std::byte>(req.begin(), req.end());
  };
  auto server = SocketServer::Start(0, echo);
  ASSERT_TRUE(server.ok());
  const std::uint16_t port = (*server)->port();

  ClientConfig config;
  config.multiplex = true;
  config.call_timeout = milliseconds(2000);
  MuxSocketTransport mux({"127.0.0.1", port}, {}, config);

  auto first = SealFrameWithId(Pattern(16, 1), 201);
  ASSERT_TRUE(mux.Call(Endpoint::ManagerNode(), first).ok());

  server->reset();
  server = SocketServer::Start(port, echo);
  ASSERT_TRUE(server.ok());

  // The first call after the crash may race the reader noticing the dead
  // connection; retryable failures are part of the contract.
  bool recovered = false;
  for (int attempt = 0; attempt < 10 && !recovered; ++attempt) {
    auto sealed = SealFrameWithId(Pattern(16, 2), 300 + attempt);
    auto reply = mux.Call(Endpoint::ManagerNode(), sealed);
    if (reply.ok()) {
      EXPECT_EQ(*reply, sealed);
      recovered = true;
    } else {
      EXPECT_TRUE(IsRetryable(reply.status().code()))
          << reply.status().message();
      std::this_thread::sleep_for(milliseconds(10));
    }
  }
  EXPECT_TRUE(recovered);
  EXPECT_GE(mux.stats().reconnects, 2u);
}

TEST(EventMux, TimedOutWaiterThenReconnectKeepsStreamClean) {
  // Satellite audit regression (async pipeline PR): a waiter that timed
  // out and DEREGISTERED itself, followed by a connection death and
  // reconnect, must not leave a stale request-id behind that could match
  // a post-reconnect reply. Sequence: stall the first reply past the
  // client deadline, kill the server while the stale reply may still be
  // in flight, restart on the same port, then drive fresh exchanges —
  // every one must echo its OWN sealed frame.
  std::atomic<int> calls{0};
  auto stall_first = [&calls](std::span<const std::byte> req) {
    if (calls.fetch_add(1) == 0) {
      std::this_thread::sleep_for(milliseconds(150));
    }
    return std::vector<std::byte>(req.begin(), req.end());
  };
  auto server = SocketServer::Start(0, stall_first);
  ASSERT_TRUE(server.ok());
  const std::uint16_t port = (*server)->port();

  ClientConfig config;
  config.multiplex = true;
  config.call_timeout = milliseconds(25);
  MuxSocketTransport mux({"127.0.0.1", port}, {}, config);

  auto stalled = SealFrameWithId(Pattern(24, 9), 901);
  auto timed_out = mux.Call(Endpoint::ManagerNode(), stalled);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), ErrorCode::kDeadlineExceeded);

  // Kill the server while the stalled service call is still sleeping;
  // ~SocketServer drains it, so the stale reply dies with the socket.
  server->reset();
  server = SocketServer::Start(port, stall_first);
  ASSERT_TRUE(server.ok());

  // Post-reconnect exchanges: each must match itself.
  bool recovered = false;
  for (int attempt = 0; attempt < 20; ++attempt) {
    auto sealed = SealFrameWithId(Pattern(24, 10 + attempt),
                                  1000 + static_cast<std::uint64_t>(attempt));
    auto reply = mux.Call(Endpoint::ManagerNode(), sealed);
    if (reply.ok()) {
      // The correlation invariant under audit: never someone else's frame.
      ASSERT_EQ(*reply, sealed) << "attempt " << attempt;
      recovered = true;
      break;
    }
    EXPECT_TRUE(IsRetryable(reply.status().code())) << reply.status().message();
    std::this_thread::sleep_for(milliseconds(10));
  }
  EXPECT_TRUE(recovered);

  auto stats = mux.stats();
  EXPECT_GE(stats.reconnects, 2u);  // initial connect + post-crash reconnect
  EXPECT_GE(stats.responses_matched, 1u);
  // The timed-out waiter deregistered itself, so its reply (if it ever
  // arrived) was counted dropped, not matched to a later request.
  EXPECT_LE(stats.responses_dropped, 1u);
}

// ---- Chaos through the event loop ------------------------------------------

Client::Options ChaosClientOptions(std::uint64_t jitter_seed) {
  Client::Options options;
  options.retry.max_attempts = 10'000;  // shed/fault != fail
  options.retry.initial_backoff = microseconds(1);
  options.retry.max_backoff = microseconds(100);
  options.retry.jitter_seed = jitter_seed;
  return options;
}

TEST(EventChaos, MuxClusterFaultInjectionUnderLoad) {
  // The PR 1 fault injector in front of the multiplexed client: dropped,
  // duplicated, delayed, corrupted and truncated frames all flow through
  // the epoll server, and every byte still lands.
  constexpr int kThreads = 4;
  auto cluster = SocketCluster::Start(4);
  ASSERT_TRUE(cluster.ok());
  ClientConfig config;
  config.multiplex = true;
  config.call_timeout = milliseconds(5000);
  auto transport = (*cluster)->Connect(config);

  fault::FaultConfig faults;
  faults.seed = 4242;
  faults.drop_rate = 0.05;
  faults.duplicate_rate = 0.05;
  faults.delay_rate = 0.2;
  faults.delay_min_us = 20;
  faults.delay_max_us = 200;
  faults.frame_corrupt_rate = 0.05;
  faults.frame_truncate_rate = 0.02;
  fault::FaultInjector injector(faults);

  std::atomic<int> failures{0};
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        fault::FaultInjectingTransport chaos(transport.get(), &injector);
        Client client(&chaos, ChaosClientOptions(700 + t));
        auto fd = client.Create("/chaos/mux" + std::to_string(t), kDefault);
        if (!fd.ok()) {
          ++failures;
          return;
        }
        ByteBuffer data(64 * 1024);
        FillPattern(data, 900 + t, 0);
        ByteBuffer back(data.size());
        if (!client.Write(*fd, 0, data).ok() ||
            !client.Read(*fd, 0, back).ok() ||
            FindPatternMismatch(back, 900 + t, 0).has_value()) {
          ++failures;
        }
      });
    }
  }
  EXPECT_EQ(failures.load(), 0);

  auto* mux = dynamic_cast<MuxSocketTransport*>(transport.get());
  ASSERT_NE(mux, nullptr);
  EXPECT_GT(mux->stats().requests, 0u);
}

TEST(EventChaos, CrashRestartThroughEventLoop) {
  auto cluster = SocketCluster::Start(2);
  ASSERT_TRUE(cluster.ok());
  ClientConfig config;
  config.multiplex = true;
  config.call_timeout = milliseconds(2000);
  auto transport = (*cluster)->Connect(config);
  Client client(transport.get(),
                Client::Options{});  // no retries: observe the outage

  auto fd = client.Create("/chaos/crash", Striping{0, 2, 16384});
  ASSERT_TRUE(fd.ok());
  ByteBuffer data(128 * 1024);
  FillPattern(data, 77, 0);
  ASSERT_TRUE(client.Write(*fd, 0, data).ok());

  ASSERT_TRUE((*cluster)->StopIod(0).ok());
  ByteBuffer back(data.size());
  auto while_down = client.Read(*fd, 0, back);
  ASSERT_FALSE(while_down.ok());
  EXPECT_TRUE(IsRetryable(while_down.code()))
      << while_down.message();

  ASSERT_TRUE((*cluster)->RestartIod(0).ok());
  Client retrying(transport.get(), ChaosClientOptions(5));
  auto rfd = retrying.Open("/chaos/crash");  // fds are per-Client
  ASSERT_TRUE(rfd.ok());
  ASSERT_TRUE(retrying.Read(*rfd, 0, back).ok());
  EXPECT_FALSE(FindPatternMismatch(back, 77, 0).has_value());
}

TEST(EventChaos, MuxBoundedQueueUnderLoad) {
  // The AdmissionChaos bounded-queue scenario, but over one shared
  // multiplexed connection per daemon instead of a transport per thread:
  // depth-1 queues shed, clients retry through kBusy, all bytes land,
  // and the queues drain to zero.
  constexpr std::uint32_t kServers = 2;
  constexpr int kThreads = 6;
  constexpr int kOpsPerThread = 8;
  constexpr ByteCount kBytesPerOp = 4096;

  ServerConfig server_config;
  server_config.max_queue_depth = 1;
  server_config.schedule_fragments = true;
  obs::Registry registry;
  auto cluster = SocketCluster::Start(kServers, server_config, 0, &registry);
  ASSERT_TRUE(cluster.ok());

  ClientConfig config;
  config.multiplex = true;
  config.call_timeout = milliseconds(5000);
  auto transport = (*cluster)->Connect(config);

  Client setup(transport.get(), ChaosClientOptions(1));
  auto fd = setup.Create("/chaos/bounded", Striping{0, kServers, 512});
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(setup.Close(*fd).ok());

  std::atomic<int> failures{0};
  std::barrier sync(kThreads);
  {
    std::vector<std::jthread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Client client(transport.get(), ChaosClientOptions(100 + t));
        auto my_fd = client.Open("/chaos/bounded");
        if (!my_fd.ok()) {
          ++failures;
          return;
        }
        sync.arrive_and_wait();  // maximum collision pressure
        ByteBuffer data(kBytesPerOp);
        ByteBuffer back(kBytesPerOp);
        for (int op = 0; op < kOpsPerThread; ++op) {
          FileOffset at = static_cast<FileOffset>(t) * kOpsPerThread *
                              kBytesPerOp +
                          static_cast<FileOffset>(op) * kBytesPerOp;
          FillPattern(data, 1000 + t * kOpsPerThread + op, at);
          if (!client.Write(*my_fd, at, data).ok() ||
              !client.Read(*my_fd, at, back).ok() || back != data) {
            ++failures;
            return;
          }
        }
      });
    }
  }
  ASSERT_EQ(failures.load(), 0);

  Client verify(transport.get(), ChaosClientOptions(2));
  auto vfd = verify.Open("/chaos/bounded");
  ASSERT_TRUE(vfd.ok());
  ByteBuffer back(kBytesPerOp);
  for (int t = 0; t < kThreads; ++t) {
    for (int op = 0; op < kOpsPerThread; ++op) {
      FileOffset at = static_cast<FileOffset>(t) * kOpsPerThread *
                          kBytesPerOp +
                      static_cast<FileOffset>(op) * kBytesPerOp;
      ASSERT_TRUE(verify.Read(*vfd, at, back).ok());
      EXPECT_FALSE(
          FindPatternMismatch(back, 1000 + t * kOpsPerThread + op, at)
              .has_value())
          << "thread " << t << " op " << op;
    }
  }

  std::uint64_t rejected = 0;
  for (ServerId s = 0; s < kServers; ++s) {
    rejected += (*cluster)->admission(s).rejected();
    EXPECT_EQ((*cluster)->admission(s).depth(), 0)
        << "server " << s << " queue not drained";
  }
  EXPECT_GT(rejected, 0u)
      << "bounded queue never shed under multiplexed load";
}

}  // namespace
}  // namespace pvfs::net
