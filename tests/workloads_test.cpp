// Workload generator tests: the patterns must reproduce the paper's
// geometry and request-count arithmetic exactly (§4.2-4.4).
#include <gtest/gtest.h>

#include "io/datatype.hpp"
#include "pvfs/config.hpp"
#include "workloads/blockblock.hpp"
#include "workloads/cyclic.hpp"
#include "workloads/flash.hpp"
#include "workloads/strided.hpp"
#include "workloads/tiledviz.hpp"

namespace pvfs::workloads {
namespace {

// ---- Cyclic ------------------------------------------------------------------

TEST(Cyclic, PartitionsWithoutOverlapOrGap) {
  CyclicConfig config{1 << 20, 4, 64};
  ByteCount covered = 0;
  std::vector<bool> seen(1 << 20, false);
  for (Rank r = 0; r < config.clients; ++r) {
    auto pattern = CyclicPattern(config, r);
    EXPECT_EQ(pattern.file.size(), config.accesses_per_client);
    for (const Extent& e : pattern.file) {
      for (FileOffset i = e.offset; i < e.end(); ++i) {
        ASSERT_FALSE(seen[i]) << "overlap at " << i;
        seen[i] = true;
      }
      covered += e.length;
    }
  }
  EXPECT_EQ(covered, config.EffectiveTotal());
  EXPECT_EQ(covered, 1u << 20);  // divides evenly here
}

TEST(Cyclic, BlockSizeShrinksWithAccesses) {
  CyclicConfig few{kGiB, 8, 1000};
  CyclicConfig many{kGiB, 8, 1000000};
  EXPECT_EQ(few.BlockBytes(), kGiB / (8 * 1000));
  EXPECT_EQ(many.BlockBytes(), kGiB / (8 * 1000000));
  // The paper's 9-client turning point arithmetic: ~149 bytes/access.
  CyclicConfig paper{kGiB, 9, 800000};
  EXPECT_EQ(paper.BlockBytes(), 149u);
}

TEST(Cyclic, InterleavingIsRoundRobin) {
  CyclicConfig config{4096, 4, 4};  // block = 256
  auto p0 = CyclicPattern(config, 0);
  auto p1 = CyclicPattern(config, 1);
  EXPECT_EQ(p0.file[0], (Extent{0, 256}));
  EXPECT_EQ(p1.file[0], (Extent{256, 256}));
  EXPECT_EQ(p0.file[1], (Extent{1024, 256}));
  EXPECT_EQ(p1.file[1], (Extent{1280, 256}));
}

TEST(Cyclic, MemorySideIsContiguous) {
  CyclicConfig config{1 << 16, 2, 8};
  auto p = CyclicPattern(config, 1);
  ASSERT_EQ(p.memory.size(), 1u);
  EXPECT_EQ(p.memory[0].length, config.BytesPerClient());
}

// ---- Block-block --------------------------------------------------------------

TEST(BlockBlock, TilesPartitionTheArray) {
  BlockBlockConfig config{1 << 20, 4, 64};  // 1024x1024, 2x2 grid
  std::vector<bool> seen(1 << 20, false);
  ByteCount covered = 0;
  for (Rank r = 0; r < config.clients; ++r) {
    auto pattern = BlockBlockPattern(config, r);
    for (const Extent& e : pattern.file) {
      for (FileOffset i = e.offset; i < e.end(); ++i) {
        ASSERT_FALSE(seen[i]) << "overlap at " << i;
        seen[i] = true;
      }
      covered += e.length;
    }
  }
  EXPECT_EQ(covered, 1u << 20);  // exact cover: no gaps
}

TEST(BlockBlock, RowsAreTheContiguityLimit) {
  BlockBlockConfig config{1 << 20, 4, 8};  // few accesses: frag = row
  auto pattern = BlockBlockPattern(config, 0);
  // Tile is 512x512: 512 rows of 512 bytes each.
  EXPECT_EQ(pattern.file.size(), 512u);
  EXPECT_EQ(pattern.file[0], (Extent{0, 512}));
  EXPECT_EQ(pattern.file[1], (Extent{1024, 512}));  // next array row
}

TEST(BlockBlock, AccessCountFragmentsRows) {
  BlockBlockConfig config{1 << 20, 4, 2048};  // frag = 256K/2048 = 128
  auto pattern = BlockBlockPattern(config, 3);
  EXPECT_EQ(pattern.file.size(), 2048u);
  EXPECT_EQ(pattern.file[0].length, 128u);
  // Adjacent fragments within one row are file-contiguous but separate.
  EXPECT_EQ(pattern.file[1].offset, pattern.file[0].end());
}

TEST(BlockBlock, UnevenGeometryStillCovers) {
  // 9 clients over a side not divisible by 3 (the paper's 9-client case).
  BlockBlockConfig config{100 * 100, 9, 50};
  ByteCount covered = 0;
  for (Rank r = 0; r < 9; ++r) {
    covered += TotalBytes(BlockBlockPattern(config, r).file);
  }
  EXPECT_EQ(covered, 10000u);
}

TEST(BlockBlock, PaperAccessSizeArithmetic) {
  // (1 GiB)/(9 clients)/(800k accesses) ~ 149 bytes per access.
  BlockBlockConfig config{kGiB, 9, 800000};
  auto pattern = BlockBlockPattern(config, 4);
  // Fragment size should be close to 149 (tile rounding makes it vary).
  EXPECT_GE(pattern.file[0].length, 140u);
  EXPECT_LE(pattern.file[0].length, 160u);
}

// ---- FLASH ---------------------------------------------------------------------

TEST(Flash, PaperArithmetic) {
  FlashConfig config;
  config.nprocs = 1;
  // §4.3.1: 80*8*8*8*24 = 983,040 memory regions of 8 bytes...
  EXPECT_EQ(config.MemRegionsPerProc(), 983040u);
  // ...1,920 file regions of 4,096 bytes...
  EXPECT_EQ(config.FileRegionsPerProc(), 1920u);
  EXPECT_EQ(config.FileChunkBytes(), 4096u);
  // ...7,864,320 bytes per processor.
  EXPECT_EQ(config.BytesPerProc(), 7864320u);
  // List I/O: 80*24/64 = 30 requests per processor.
  EXPECT_EQ(config.FileRegionsPerProc() / kMaxListRegions, 30u);
}

TEST(Flash, PatternMatchesArithmetic) {
  FlashConfig config;
  config.nprocs = 4;
  config.blocks_per_proc = 4;  // scaled down for materialization
  config.nvars = 6;
  auto pattern = FlashCheckpointPattern(config, 2);
  EXPECT_EQ(pattern.file.size(), config.FileRegionsPerProc());
  EXPECT_EQ(pattern.memory.size(), config.MemRegionsPerProc());
  EXPECT_EQ(TotalBytes(pattern.file), config.BytesPerProc());
  EXPECT_EQ(TotalBytes(pattern.memory), config.BytesPerProc());
}

TEST(Flash, FileLayoutIsVariableMajor) {
  FlashConfig config;
  config.nprocs = 2;
  config.blocks_per_proc = 3;
  config.nvars = 2;
  auto p0 = FlashCheckpointPattern(config, 0);
  auto p1 = FlashCheckpointPattern(config, 1);
  ByteCount chunk = config.FileChunkBytes();
  // Proc 0 block 0 var 0 at offset 0; proc 1 right after.
  EXPECT_EQ(p0.file[0].offset, 0u);
  EXPECT_EQ(p1.file[0].offset, chunk);
  // Var 1 starts after all blocks of var 0 across both procs.
  EXPECT_EQ(p0.file[3].offset, 3u * 2 * chunk);
}

TEST(Flash, RanksInterleaveWithoutOverlap) {
  FlashConfig config;
  config.nprocs = 3;
  config.blocks_per_proc = 2;
  config.nvars = 2;
  config.nxb = config.nyb = config.nzb = 2;
  config.nguard = 1;
  std::vector<bool> seen(config.FileBytes(), false);
  for (Rank r = 0; r < 3; ++r) {
    auto pattern = FlashCheckpointPattern(config, r);
    for (const Extent& e : pattern.file) {
      for (FileOffset i = e.offset; i < e.end(); ++i) {
        ASSERT_FALSE(seen[i]);
        seen[i] = true;
      }
    }
  }
  for (bool b : seen) EXPECT_TRUE(b);  // exact cover
}

TEST(Flash, MemoryRegionsSkipGuardCells) {
  FlashConfig config;
  config.nprocs = 1;
  config.blocks_per_proc = 1;
  config.nvars = 1;
  config.nxb = config.nyb = config.nzb = 2;
  config.nguard = 1;
  // Padded block is 4x4x4 = 64 elements; interior 8.
  auto pattern = FlashCheckpointPattern(config, 0);
  ASSERT_EQ(pattern.memory.size(), 8u);
  // First interior element (x=y=z=0 -> padded (1,1,1)).
  ByteCount elem = config.var_bytes * config.nvars;
  EXPECT_EQ(pattern.memory[0].offset, ((1 * 4 + 1) * 4 + 1) * elem);
  // All memory offsets inside the padded buffer.
  for (const Extent& m : pattern.memory) {
    EXPECT_LE(m.end(), config.MemBytesPerProc());
  }
}

TEST(Flash, VariablesInterleaveInMemory) {
  FlashConfig config;
  config.nprocs = 1;
  config.blocks_per_proc = 1;
  config.nvars = 3;
  config.nxb = config.nyb = config.nzb = 2;
  config.nguard = 0;
  auto pattern = FlashCheckpointPattern(config, 0);
  // Memory region for var v of element 0 sits v*8 bytes into the element.
  ByteCount per_var_regions = 8;  // 2x2x2 interior
  EXPECT_EQ(pattern.memory[0].offset, 0u);
  EXPECT_EQ(pattern.memory[per_var_regions].offset, 8u);      // var 1
  EXPECT_EQ(pattern.memory[2 * per_var_regions].offset, 16u); // var 2
}

// ---- Nested strided ------------------------------------------------------------

TEST(NestedStrided, SimpleStridedMatchesVectorDatatype) {
  // One level: equivalent to an MPI vector type.
  NestedStridedConfig config;
  config.base = 1000;
  config.levels = {{10, 256}};
  config.block_bytes = 64;
  EXPECT_EQ(config.RegionCount(), 10u);
  EXPECT_EQ(config.TotalBytes(), 640u);

  ExtentList regions = NestedStridedRegions(config);
  io::Datatype vec = io::Datatype::HVector(10, 1, 256, io::Datatype::Bytes(64));
  EXPECT_EQ(regions, vec.Flatten(1000));
}

TEST(NestedStrided, TwoLevelNestingMatchesNestedVectors) {
  NestedStridedConfig config;
  config.levels = {{3, 10000}, {4, 100}};
  config.block_bytes = 16;
  ExtentList regions = NestedStridedRegions(config);
  ASSERT_EQ(regions.size(), 12u);
  EXPECT_EQ(regions[0], (Extent{0, 16}));
  EXPECT_EQ(regions[3], (Extent{300, 16}));
  EXPECT_EQ(regions[4], (Extent{10000, 16}));

  io::Datatype inner =
      io::Datatype::HVector(4, 1, 100, io::Datatype::Bytes(16));
  io::Datatype outer = io::Datatype::HVector(3, 1, 10000, inner);
  EXPECT_EQ(regions, outer.Flatten(0));
}

TEST(NestedStrided, DenseStrideCoalesces) {
  NestedStridedConfig config;
  config.levels = {{5, 32}};
  config.block_bytes = 32;  // stride == block: contiguous
  ExtentList regions = NestedStridedRegions(config);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0], (Extent{0, 160}));
}

TEST(NestedStrided, ZeroBlockIsEmpty) {
  NestedStridedConfig config;
  config.levels = {{5, 100}};
  config.block_bytes = 0;
  EXPECT_TRUE(NestedStridedRegions(config).empty());
  EXPECT_EQ(config.TotalBytes(), 0u);
}

TEST(NestedStrided, NoLevelsIsSingleBlock) {
  NestedStridedConfig config;
  config.base = 77;
  config.block_bytes = 10;
  EXPECT_EQ(NestedStridedRegions(config), (ExtentList{{77, 10}}));
}

// ---- Tiled visualization --------------------------------------------------------

TEST(TiledViz, PaperGeometry) {
  TiledVizConfig config;
  EXPECT_EQ(config.clients(), 6u);
  EXPECT_EQ(config.WallWidth(), 2532u);
  EXPECT_EQ(config.WallHeight(), 1408u);
  // §4.4.1: "bringing the file size to about 10.2 MBytes".
  EXPECT_EQ(config.FileBytes(), 10695168u);
}

TEST(TiledViz, PaperRequestCounts) {
  TiledVizConfig config;
  auto pattern = TiledVizPattern(config, 0);
  // 768 noncontiguous rows -> 768 multiple-I/O requests, 12 list requests.
  EXPECT_EQ(pattern.file.size(), 768u);
  EXPECT_EQ((pattern.file.size() + kMaxListRegions - 1) / kMaxListRegions,
            12u);
  EXPECT_EQ(pattern.file[0].length, 3072u);  // 1024 px * 3 B
  EXPECT_EQ(TotalBytes(pattern.file), config.TileBytes());
}

TEST(TiledViz, RowsStrideByWallWidth) {
  TiledVizConfig config;
  auto pattern = TiledVizPattern(config, 0);
  ByteCount stride = config.WallWidth() * config.bytes_per_pixel;
  EXPECT_EQ(pattern.file[1].offset - pattern.file[0].offset, stride);
}

TEST(TiledViz, OverlapsMakeNeighboursShareBytes) {
  TiledVizConfig config;
  auto left = TiledVizPattern(config, 0);
  auto right = TiledVizPattern(config, 1);
  // Tile 1 starts 1024-270 = 754 pixels in; row 0 of both tiles overlap
  // in [754*3, 1024*3).
  EXPECT_EQ(right.file[0].offset, 754u * 3);
  EXPECT_LT(right.file[0].offset, left.file[0].end());
}

TEST(TiledViz, BottomRowTilesOffsetByOverlap) {
  TiledVizConfig config;
  auto bottom = TiledVizPattern(config, 3);  // tile row 1, col 0
  ByteCount row_stride = config.WallWidth() * config.bytes_per_pixel;
  EXPECT_EQ(bottom.file[0].offset, (768u - 128u) * row_stride);
}

TEST(TiledViz, AllPatternsStayInFile) {
  TiledVizConfig config;
  for (Rank r = 0; r < config.clients(); ++r) {
    auto pattern = TiledVizPattern(config, r);
    for (const Extent& e : pattern.file) {
      EXPECT_LE(e.end(), config.FileBytes()) << "rank " << r;
    }
  }
}

}  // namespace
}  // namespace pvfs::workloads
