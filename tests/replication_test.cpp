// N-way chunk replication end to end: placement-driven write fan-out,
// client read/write failover with per-replica health, and the
// re-replication scrub that restores redundancy after a crash-restart.
// The acceptance scenario from the paper-repro roadmap: with replicas=2,
// killing one iod mid-write completes with bit-identical contents and
// zero job-level failures; after restart the scrub re-copies the missed
// chunks, proven by killing the *other* replica and reading again.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/bytes.hpp"
#include "fault/fault.hpp"
#include "fault/fault_transport.hpp"
#include "net/socket_transport.hpp"
#include "pvfs/client.hpp"
#include "pvfs/repair.hpp"
#include "test_cluster.hpp"

namespace pvfs {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

constexpr ByteCount kFileBytes = 512 * 1024;  // 8 chunks of 64 KiB stripes
const Striping kStriping{0, 4, 16384};
const ReplicationConfig kTwoWay{2};

Client::Options FailoverClientOptions() {
  Client::Options options;
  options.retry.max_attempts = 12;
  options.retry.initial_backoff = microseconds{1};
  options.retry.max_backoff = microseconds{64};
  options.failover.probe_backoff = microseconds{200};
  return options;
}

ByteBuffer GoldenContents() {
  ByteBuffer golden(kFileBytes);
  FillPattern(golden, 123, 0);
  return golden;
}

// ---- Basic replicated data path -----------------------------------------

TEST(Replication, WriteFansOutReadPrefersPrimary) {
  testutil::InProcCluster cluster(4);
  Client client = cluster.MakeClient();
  auto fd = client.Create("r", kStriping, kTwoWay);
  ASSERT_TRUE(fd.ok()) << fd.status().message();
  const ByteBuffer golden = GoldenContents();
  ASSERT_TRUE(client.Write(*fd, 0, golden).ok());

  ByteBuffer out(kFileBytes);
  ASSERT_TRUE(client.Read(*fd, 0, out).ok());
  EXPECT_EQ(out, golden);
  // A healthy cluster never retargets and never ejects.
  EXPECT_EQ(client.failover_counters().retargets, 0u);
  EXPECT_EQ(client.failover_counters().ejected_replicas, 0u);

  // Every daemon holds bytes for two handles: its own primaries (base
  // handle) and its predecessor's replicas (derived handle) — the
  // rotation placement spread, observable as nonzero stored bytes under
  // the derived handle on every server.
  Client probe = cluster.MakeClient();
  auto pfd = probe.Open("r");
  ASSERT_TRUE(pfd.ok());
  auto meta = probe.Stat(*pfd);
  ASSERT_TRUE(meta.ok());
  for (ServerId s = 0; s < 4; ++s) {
    EXPECT_GT(cluster.iods[s]->store().SizeOf(ReplicaHandle(meta->handle, 1)),
              0u)
        << "server " << s << " holds no replica bytes";
  }
}

TEST(Replication, SingleReplicaPathIsUnchanged) {
  // replicas=1 (the default) must behave exactly as the unreplicated
  // client always has: same message count, no failover machinery touched.
  testutil::InProcCluster plain(4);
  testutil::InProcCluster configured(4);
  Client a = plain.MakeClient();
  Client b = configured.MakeClient();
  auto fa = a.Create("f", kStriping);
  auto fb = b.Create("f", kStriping, ReplicationConfig{1});
  ASSERT_TRUE(fa.ok());
  ASSERT_TRUE(fb.ok());
  const ByteBuffer golden = GoldenContents();
  ASSERT_TRUE(a.Write(*fa, 0, golden).ok());
  ASSERT_TRUE(b.Write(*fb, 0, golden).ok());
  EXPECT_EQ(a.stats().messages, b.stats().messages);
  EXPECT_EQ(b.failover_counters().retargets, 0u);
  ByteBuffer out(kFileBytes);
  ASSERT_TRUE(b.Read(*fb, 0, out).ok());
  EXPECT_EQ(out, golden);
}

TEST(Replication, ManagerRejectsReplicasBeyondPcount) {
  testutil::InProcCluster cluster(4);
  Client client = cluster.MakeClient();
  auto fd = client.Create("bad", kStriping, ReplicationConfig{5});
  ASSERT_FALSE(fd.ok());
  EXPECT_EQ(fd.status().code(), ErrorCode::kInvalidArgument);
}

// ---- Failover: reads and writes survive a dead iod ----------------------

TEST(ReplicationChaos, ReadFailsOverWhenPrimaryDies) {
  testutil::InProcCluster cluster(4);
  {
    Client writer = cluster.MakeClient();
    auto fd = writer.Create("r", kStriping, kTwoWay);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(writer.Write(*fd, 0, GoldenContents()).ok());
    ASSERT_TRUE(writer.Close(*fd).ok());
  }
  fault::FaultInjector injector(fault::FaultConfig{});
  fault::FaultInjectingTransport chaos(cluster.transport.get(), &injector);
  Client client(&chaos, FailoverClientOptions());
  injector.CrashServer(2, 1'000'000);  // never comes back

  auto fd = client.Open("r");
  ASSERT_TRUE(fd.ok());
  ByteBuffer out(kFileBytes);
  Status read = client.Read(*fd, 0, out);
  ASSERT_TRUE(read.ok()) << read.message();
  EXPECT_EQ(out, GoldenContents());
  EXPECT_GT(client.failover_counters().retargets, 0u);
  EXPECT_EQ(client.retry_counters().exhausted, 0u);
}

// The acceptance scenario: one iod is killed and stays dead while a
// replicated write runs. The job completes with zero failures, the file
// reads back bit-identical through failover, and the client counted its
// degraded-ack retargets.
TEST(ReplicationChaos, KillOneIodMidWriteCompletesBitIdentical) {
  testutil::InProcCluster cluster(4);
  fault::FaultInjector injector(fault::FaultConfig{});
  fault::FaultInjectingTransport chaos(cluster.transport.get(), &injector);
  Client client(&chaos, FailoverClientOptions());

  auto fd = client.Create("r", kStriping, kTwoWay);
  ASSERT_TRUE(fd.ok());
  const ByteBuffer golden = GoldenContents();
  // First half lands on a healthy cluster; the kill hits mid-file.
  const ByteCount half = kFileBytes / 2;
  ByteBuffer first(golden.begin(),
                   golden.begin() + static_cast<std::ptrdiff_t>(half));
  ByteBuffer second(golden.begin() + static_cast<std::ptrdiff_t>(half),
                    golden.end());
  ASSERT_TRUE(client.Write(*fd, 0, first).ok());
  injector.CrashServer(3, 1'000'000);
  Status rest = client.Write(*fd, half, second);
  ASSERT_TRUE(rest.ok()) << rest.message();  // zero job-level failures
  ASSERT_TRUE(client.Close(*fd).ok());
  EXPECT_GT(client.failover_counters().retargets, 0u);
  EXPECT_EQ(client.retry_counters().exhausted, 0u);

  auto rfd = client.Open("r");
  ASSERT_TRUE(rfd.ok());
  ByteBuffer out(kFileBytes);
  ASSERT_TRUE(client.Read(*rfd, 0, out).ok());
  EXPECT_EQ(out, golden);

  // Failover is not retry: the degraded acks surfaced as retargets, so
  // the retry budget (and its per-code split) stays untouched.
  EXPECT_EQ(client.retry_counters().retries, 0u);
}

// After the kill, the restarted daemon is re-replicated from the
// surviving copies; redundancy is proven restored by killing the OTHER
// replica and reading the whole file again.
TEST(ReplicationChaos, RepairRestoresRedundancyAfterRestart) {
  testutil::InProcCluster cluster(4);
  const ByteBuffer golden = GoldenContents();
  {
    fault::FaultInjector injector(fault::FaultConfig{});
    fault::FaultInjectingTransport chaos(cluster.transport.get(), &injector);
    Client client(&chaos, FailoverClientOptions());
    auto fd = client.Create("r", kStriping, kTwoWay);
    ASSERT_TRUE(fd.ok());
    injector.CrashServer(3, 1'000'000);  // down for the whole write
    ASSERT_TRUE(client.Write(*fd, 0, golden).ok());
    ASSERT_TRUE(client.Close(*fd).ok());
    EXPECT_GT(client.failover_counters().retargets, 0u);
  }
  // Server 3 missed every write addressed to it (its own primaries and
  // its share of server 2's replicas). "Restart" it and scrub over the
  // clean transport, as SocketCluster::RestartIod does over TCP.
  auto report = RepairRestartedIod(*cluster.transport, 3);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_GT(report->chunks_copied, 0u);
  EXPECT_EQ(report->chunks_unrepaired, 0u);
  EXPECT_GT(cluster.iods[3]->stats().repair_chunks_copied, 0u);
  // The suspect's manifest was empty, so its scanned counter stays 0;
  // the SOURCE daemons served the manifests the copies came from.
  EXPECT_GT(cluster.iods[0]->stats().repair_chunks_scanned, 0u);

  // Second kill, other replica: server 0 holds the surviving copy of
  // server 3's primaries (rotation: replica of primary 3 is (3+1)%4).
  // With it dead, reading server-3 stripes must come from the repaired
  // server 3 itself — zero-filled holes would betray a bogus repair.
  fault::FaultInjector injector(fault::FaultConfig{});
  fault::FaultInjectingTransport chaos(cluster.transport.get(), &injector);
  Client client(&chaos, FailoverClientOptions());
  injector.CrashServer(0, 1'000'000);
  auto fd = client.Open("r");
  ASSERT_TRUE(fd.ok());
  ByteBuffer out(kFileBytes);
  Status read = client.Read(*fd, 0, out);
  ASSERT_TRUE(read.ok()) << read.message();
  EXPECT_EQ(out, golden);
}

// A second scrub over an already-consistent cluster copies nothing: the
// checksum compare recognizes intact chunks (idempotent repair).
TEST(ReplicationChaos, RepairIsIdempotent) {
  testutil::InProcCluster cluster(4);
  Client client = cluster.MakeClient();
  auto fd = client.Create("r", kStriping, kTwoWay);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(client.Write(*fd, 0, GoldenContents()).ok());

  auto report = RepairRestartedIod(*cluster.transport, 1);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->chunks_copied, 0u);
  EXPECT_GT(report->chunks_examined, 0u);
  EXPECT_EQ(report->chunks_unrepaired, 0u);
}

// Consecutive failures eject the dead endpoint: later operations skip it
// without paying its timeout, and the ejection is counted once.
TEST(ReplicationChaos, DeadReplicaIsEjectedAfterThreshold) {
  testutil::InProcCluster cluster(4);
  {
    Client writer = cluster.MakeClient();
    auto fd = writer.Create("r", kStriping, kTwoWay);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(writer.Write(*fd, 0, GoldenContents()).ok());
  }
  fault::FaultInjector injector(fault::FaultConfig{});
  fault::FaultInjectingTransport chaos(cluster.transport.get(), &injector);
  Client::Options options = FailoverClientOptions();
  options.failover.eject_after = 2;
  options.failover.probe_backoff = microseconds{50'000};  // no probe in-test
  Client client(&chaos, options);
  injector.CrashServer(1, 1'000'000);

  auto fd = client.Open("r");
  ASSERT_TRUE(fd.ok());
  ByteBuffer out(kFileBytes);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(client.Read(*fd, 0, out).ok());
  }
  EXPECT_EQ(out, GoldenContents());
  EXPECT_GE(client.failover_counters().ejected_replicas, 1u);
  // Ejection caps the failure count: 6 full-file reads against an
  // unejected endpoint would fail 1's stripes every time; the health map
  // short-circuits most of them.
  EXPECT_GT(client.failover_counters().retargets, 0u);
}

// The per-code retry split (satellite): a transient crash on an
// UNREPLICATED file goes through the in-place retry loop, and every one
// of those resends lands in the kUnavailable bucket.
TEST(ReplicationChaos, RetryCountersSplitByErrorCode) {
  testutil::InProcCluster cluster(4);
  fault::FaultInjector injector(fault::FaultConfig{});
  fault::FaultInjectingTransport chaos(cluster.transport.get(), &injector);
  Client client(&chaos, FailoverClientOptions());
  auto fd = client.Create("f", kStriping);  // replicas=1: no failover
  ASSERT_TRUE(fd.ok());
  ByteBuffer data(kFileBytes);
  FillPattern(data, 17, 0);
  injector.CrashServer(2, 4);  // refuses 4 calls, then restarts
  ASSERT_TRUE(client.Write(*fd, 0, data).ok());
  const auto counters = client.retry_counters();
  EXPECT_GT(counters.retries, 0u);
  EXPECT_EQ(counters.retries_unavailable, counters.retries);
  EXPECT_EQ(counters.retries_busy, 0u);
  EXPECT_EQ(counters.retries_corruption, 0u);
  EXPECT_EQ(counters.retries_deadline, 0u);
}

// ---- Over real TCP: crash, restart, automatic scrub ---------------------

TEST(ReplicationSocket, RestartIodScrubsAndSurvivesSecondKill) {
  auto cluster = net::SocketCluster::Start(4);
  ASSERT_TRUE(cluster.ok());
  auto transport = (*cluster)->Connect(milliseconds{5000});
  Client client(transport.get(), FailoverClientOptions());

  auto fd = client.Create("r", kStriping, kTwoWay);
  ASSERT_TRUE(fd.ok());
  const ByteBuffer golden = GoldenContents();

  ASSERT_TRUE((*cluster)->StopIod(1).ok());
  Status wrote = client.Write(*fd, 0, golden);
  ASSERT_TRUE(wrote.ok()) << wrote.message();
  EXPECT_GT(client.failover_counters().retargets, 0u);

  // RestartIod re-replicates before returning: daemon 1's missed chunks
  // are copied back from the surviving replicas over the wire.
  ASSERT_TRUE((*cluster)->RestartIod(1).ok());
  EXPECT_GT((*cluster)->iod(1).stats().repair_chunks_copied, 0u);

  // Kill the partner that covered for daemon 1 (rotation: replica of
  // primary 1 lives on daemon 2). The read must now be served from the
  // scrubbed copy.
  ASSERT_TRUE((*cluster)->StopIod(2).ok());
  ByteBuffer out(kFileBytes);
  Status read = client.Read(*fd, 0, out);
  ASSERT_TRUE(read.ok()) << read.message();
  EXPECT_EQ(out, golden);
}

TEST(ReplicationSocket, ExplicitRepairReportsWork) {
  auto cluster = net::SocketCluster::Start(4);
  ASSERT_TRUE(cluster.ok());
  auto transport = (*cluster)->Connect(milliseconds{5000});
  Client client(transport.get(), FailoverClientOptions());
  auto fd = client.Create("r", kStriping, kTwoWay);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE((*cluster)->StopIod(3).ok());
  ASSERT_TRUE(client.Write(*fd, 0, GoldenContents()).ok());
  ASSERT_TRUE((*cluster)->RestartIod(3).ok());  // auto-scrub inside

  // A follow-up explicit scrub finds nothing left to do.
  auto again = (*cluster)->RepairIod(3);
  ASSERT_TRUE(again.ok()) << again.status().message();
  EXPECT_EQ(again->chunks_copied, 0u);
  EXPECT_GT(again->files_checked, 0u);
}

TEST(ReplicationSocket, ConnectErrorsNameTheDaemonAddress) {
  auto cluster = net::SocketCluster::Start(2);
  ASSERT_TRUE(cluster.ok());
  const auto addresses = (*cluster)->iod_addresses();
  auto transport = (*cluster)->Connect(milliseconds{250});
  Client client(transport.get());
  auto fd = client.Create("f", Striping{0, 2, 16384});
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE((*cluster)->StopIod(1).ok());
  ByteBuffer data(2 * 16384);
  FillPattern(data, 8, 0);
  Status status = client.Write(*fd, 0, data);
  ASSERT_FALSE(status.ok());
  // The failure says WHICH daemon refused (satellite: endpoint-labelled
  // connect errors).
  EXPECT_NE(status.message().find(net::EndpointLabel(addresses[1])),
            std::string::npos)
      << status.message();
}

}  // namespace
}  // namespace pvfs
