// Datatype construction, flattening and typed-I/O tests (paper §5's
// datatype-request proposal).
#include "io/datatype.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "io/datatype_io.hpp"
#include "io/list_io.hpp"
#include "test_cluster.hpp"

namespace pvfs::io {
namespace {

using pvfs::testutil::InProcCluster;

TEST(Datatype, BytesBasics) {
  Datatype t = Datatype::Bytes(16);
  EXPECT_EQ(t.size(), 16u);
  EXPECT_EQ(t.extent(), 16u);
  EXPECT_EQ(t.region_count(), 1u);
  EXPECT_EQ(t.Flatten(100), (ExtentList{{100, 16}}));
}

TEST(Datatype, ContiguousCoalescesToOneRegion) {
  Datatype t = Datatype::Contiguous(4, Datatype::Bytes(8));
  EXPECT_EQ(t.size(), 32u);
  EXPECT_EQ(t.extent(), 32u);
  EXPECT_EQ(t.Flatten(0), (ExtentList{{0, 32}}));
}

TEST(Datatype, VectorStridesInChildExtents) {
  // MPI_Type_vector(count=3, blocklen=2, stride=4) of 8-byte elements:
  // blocks at 0, 32, 64, each 16 bytes.
  Datatype t = Datatype::Vector(3, 2, 4, Datatype::Bytes(8));
  EXPECT_EQ(t.size(), 48u);
  EXPECT_EQ(t.extent(), (2ull * 4 + 2) * 8);  // last block start + block
  EXPECT_EQ(t.Flatten(0),
            (ExtentList{{0, 16}, {32, 16}, {64, 16}}));
}

TEST(Datatype, HVectorStridesInBytes) {
  Datatype t = Datatype::HVector(2, 1, 100, Datatype::Bytes(10));
  EXPECT_EQ(t.Flatten(5), (ExtentList{{5, 10}, {105, 10}}));
  EXPECT_EQ(t.extent(), 110u);
}

TEST(Datatype, IndexedBlocks) {
  const std::uint64_t blocklens[] = {2, 1};
  const std::int64_t displs[] = {0, 5};
  Datatype t = Datatype::Indexed(blocklens, displs, Datatype::Bytes(4));
  EXPECT_EQ(t.size(), 12u);
  EXPECT_EQ(t.Flatten(0), (ExtentList{{0, 8}, {20, 4}}));
}

TEST(Datatype, StructWithMixedFields) {
  std::vector<DatatypeField> fields;
  fields.push_back({0, 2, Datatype::Bytes(4)});
  fields.push_back({100, 1, Datatype::Contiguous(3, Datatype::Bytes(2))});
  Datatype t = Datatype::StructType(std::move(fields));
  EXPECT_EQ(t.size(), 14u);
  EXPECT_EQ(t.Flatten(0), (ExtentList{{0, 8}, {100, 6}}));
}

TEST(Datatype, ResizedControlsTiling) {
  // A 4-byte payload padded to a 16-byte extent tiles at 16-byte steps.
  Datatype t = Datatype::Resized(Datatype::Bytes(4), 0, 16);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.extent(), 16u);
  EXPECT_EQ(t.Flatten(0, 3),
            (ExtentList{{0, 4}, {16, 4}, {32, 4}}));
}

TEST(Datatype, FlattenTilesAtExtent) {
  Datatype t = Datatype::Vector(2, 1, 2, Datatype::Bytes(4));
  // One instance: [0,4) [8,12); extent 12. Tiled twice: second at 12.
  EXPECT_EQ(t.Flatten(0, 2),
            (ExtentList{{0, 4}, {8, 12 + 4 - 8}, {20, 4}}));
  // Note: [8,12) and [12,16) coalesce across the tile boundary.
}

TEST(Datatype, SubarrayTwoDim) {
  // 4x6 byte array, 2x3 subarray at (1,2): rows at 8+2=10 and 16+2=18.
  const std::uint64_t sizes[] = {4, 6};
  const std::uint64_t subsizes[] = {2, 3};
  const std::uint64_t starts[] = {1, 2};
  Datatype t = Datatype::Subarray(sizes, subsizes, starts, Datatype::Bytes(1));
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.extent(), 24u);  // full array extent for clean tiling
  EXPECT_EQ(t.Flatten(0), (ExtentList{{8, 3}, {14, 3}}));
}

TEST(Datatype, SubarrayThreeDim) {
  const std::uint64_t sizes[] = {3, 4, 5};
  const std::uint64_t subsizes[] = {2, 2, 2};
  const std::uint64_t starts[] = {1, 1, 2};
  Datatype t = Datatype::Subarray(sizes, subsizes, starts, Datatype::Bytes(1));
  EXPECT_EQ(t.size(), 8u);
  ExtentList flat = t.Flatten(0);
  ASSERT_EQ(flat.size(), 4u);
  // First run: (z=1,y=1,x=2..3) -> 1*20 + 1*5 + 2 = 27.
  EXPECT_EQ(flat[0], (Extent{27, 2}));
  EXPECT_EQ(flat[1], (Extent{32, 2}));
  EXPECT_EQ(flat[2], (Extent{47, 2}));
  EXPECT_EQ(flat[3], (Extent{52, 2}));
}

TEST(Datatype, RegionCountTracksLeaves) {
  Datatype vec = Datatype::Vector(10, 2, 5, Datatype::Bytes(8));
  EXPECT_EQ(vec.region_count(), 20u);
  Datatype nested = Datatype::HVector(3, 1, 1000, vec);
  EXPECT_EQ(nested.region_count(), 60u);
}

TEST(Datatype, DescriptionSizeIsConstantInCount) {
  // The §5 argument: a vector description does not grow with the number
  // of regions it describes.
  Datatype small = Datatype::Vector(10, 1, 2, Datatype::Bytes(8));
  Datatype large = Datatype::Vector(1000000, 1, 2, Datatype::Bytes(8));
  EXPECT_EQ(small.DescriptionWireBytes(), large.DescriptionWireBytes());
  EXPECT_LT(large.DescriptionWireBytes(), 64u);
  EXPECT_EQ(large.region_count(), 1000000u);
}

TEST(PatternFromDatatypes, FileViewTilingAndTruncation) {
  // Memory: 10 contiguous 8-byte elements. File view: vector picking the
  // first 8 bytes of every 32-byte group. 80 bytes of data need 10 tiles.
  Datatype mem = Datatype::Bytes(80);
  Datatype filetype =
      Datatype::Resized(Datatype::Bytes(8), 0, 32);
  auto pattern = PatternFromDatatypes(mem, 1, filetype, 1000);
  ASSERT_TRUE(pattern.ok());
  EXPECT_EQ(TotalBytes(pattern->file), 80u);
  ASSERT_EQ(pattern->file.size(), 10u);
  EXPECT_EQ(pattern->file[0], (Extent{1000, 8}));
  EXPECT_EQ(pattern->file[9], (Extent{1000 + 9 * 32, 8}));
  EXPECT_EQ(pattern->memory, (ExtentList{{0, 80}}));
}

TEST(PatternFromDatatypes, PartialLastTile) {
  Datatype mem = Datatype::Bytes(20);
  Datatype filetype = Datatype::Resized(Datatype::Bytes(8), 0, 16);
  auto pattern = PatternFromDatatypes(mem, 1, filetype, 0);
  ASSERT_TRUE(pattern.ok());
  ASSERT_EQ(pattern->file.size(), 3u);
  EXPECT_EQ(pattern->file[2], (Extent{32, 4}));  // truncated to 20 bytes
}

TEST(PatternFromDatatypes, RejectsDatalessFiletype) {
  Datatype mem = Datatype::Bytes(8);
  Datatype hole = Datatype::Resized(Datatype::Bytes(0), 0, 64);
  EXPECT_FALSE(PatternFromDatatypes(mem, 1, hole, 0).ok());
}

TEST(TypedIo, RoundTripThroughRealFileSystem) {
  InProcCluster cluster;
  Client client = cluster.MakeClient();
  auto fd = client.Create("typed", Striping{0, 8, 16384});
  ASSERT_TRUE(fd.ok());

  // Column access of a 64x64-byte matrix: memory contiguous, file strided.
  Datatype mem = Datatype::Bytes(64 * 4);
  Datatype filetype = Datatype::Vector(64, 4, 64, Datatype::Bytes(1));

  ByteBuffer out_buf(64 * 4);
  ByteBuffer in_buf(64 * 4);
  FillPattern(in_buf, 31, 0);

  ListIo list;
  ASSERT_TRUE(
      WriteTyped(client, *fd, mem, 1, in_buf, filetype, 0, list).ok());
  ASSERT_TRUE(
      ReadTyped(client, *fd, mem, 1, out_buf, filetype, 0, list).ok());
  EXPECT_EQ(out_buf, in_buf);

  // The bytes landed where the filetype says: column k of row r at r*64+k.
  ByteBuffer image(64 * 64);
  ASSERT_TRUE(client.Read(*fd, 0, image).ok());
  for (int r = 0; r < 64; ++r) {
    for (int k = 0; k < 4; ++k) {
      EXPECT_EQ(image[r * 64 + k], in_buf[r * 4 + k]);
    }
  }
}

}  // namespace
}  // namespace pvfs::io
