#include "common/extent.hpp"

#include <gtest/gtest.h>

namespace pvfs {
namespace {

TEST(Extent, BasicAccessors) {
  Extent e{100, 50};
  EXPECT_EQ(e.end(), 150u);
  EXPECT_FALSE(e.empty());
  EXPECT_TRUE(e.contains(100));
  EXPECT_TRUE(e.contains(149));
  EXPECT_FALSE(e.contains(150));
  EXPECT_TRUE(Extent({0, 0}).empty());
}

TEST(Extent, Overlaps) {
  Extent a{0, 10};
  EXPECT_TRUE(a.overlaps({5, 10}));
  EXPECT_FALSE(a.overlaps({10, 10}));  // touching is not overlapping
  EXPECT_TRUE(a.overlaps({0, 1}));
  EXPECT_FALSE(a.overlaps({20, 5}));
}

TEST(ExtentList, TotalBytes) {
  ExtentList list{{0, 10}, {100, 20}, {50, 0}};
  EXPECT_EQ(TotalBytes(list), 30u);
  EXPECT_EQ(TotalBytes(ExtentList{}), 0u);
}

TEST(ExtentList, SortedDisjointChecks) {
  EXPECT_TRUE(IsSortedDisjoint(ExtentList{{0, 10}, {10, 5}, {20, 1}}));
  EXPECT_FALSE(IsSortedDisjoint(ExtentList{{0, 10}, {5, 5}}));
  EXPECT_TRUE(IsSortedStrictlyDisjoint(ExtentList{{0, 10}, {11, 5}}));
  EXPECT_FALSE(IsSortedStrictlyDisjoint(ExtentList{{0, 10}, {10, 5}}));
}

TEST(ExtentList, BoundingExtent) {
  EXPECT_FALSE(BoundingExtent(ExtentList{}).has_value());
  EXPECT_FALSE(BoundingExtent(ExtentList{{5, 0}}).has_value());
  auto bound = BoundingExtent(ExtentList{{100, 10}, {10, 5}, {50, 25}});
  ASSERT_TRUE(bound.has_value());
  EXPECT_EQ(bound->offset, 10u);
  EXPECT_EQ(bound->end(), 110u);
}

TEST(ExtentList, CoalesceAdjacentPreservesOrder) {
  ExtentList in{{0, 10}, {10, 10}, {30, 5}, {20, 5}, {25, 0}};
  ExtentList out = CoalesceAdjacent(in);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (Extent{0, 20}));
  EXPECT_EQ(out[1], (Extent{30, 5}));
  EXPECT_EQ(out[2], (Extent{20, 5}));  // order preserved, no sorting
}

TEST(ExtentList, NormalizeSetMergesOverlapsAndTouching) {
  ExtentList out = NormalizeSet({{30, 5}, {0, 10}, {8, 4}, {12, 3}, {40, 0}});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Extent{0, 15}));
  EXPECT_EQ(out[1], (Extent{30, 5}));
}

TEST(ExtentList, IntersectSets) {
  ExtentList a{{0, 10}, {20, 10}};
  ExtentList b{{5, 20}};
  ExtentList out = IntersectSets(a, b);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Extent{5, 5}));
  EXPECT_EQ(out[1], (Extent{20, 5}));
}

TEST(ExtentList, IntersectSetsEmpty) {
  EXPECT_TRUE(IntersectSets(ExtentList{{0, 5}}, ExtentList{{5, 5}}).empty());
  EXPECT_TRUE(IntersectSets(ExtentList{}, ExtentList{{0, 5}}).empty());
}

TEST(ExtentList, ClipToWindow) {
  ExtentList in{{0, 10}, {15, 10}, {40, 10}};
  ExtentList out = ClipToWindow(in, Extent{5, 25});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (Extent{5, 5}));
  EXPECT_EQ(out[1], (Extent{15, 10}));
}

TEST(MatchSegments, RejectsUnequalTotals) {
  auto result = MatchSegments(ExtentList{{0, 10}}, ExtentList{{0, 5}});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kInvalidArgument);
}

TEST(MatchSegments, SplitsAtBothBoundaries) {
  // memory: [0,8) [20,4); file: [100,4) [200,8)
  auto result =
      MatchSegments(ExtentList{{0, 8}, {20, 4}}, ExtentList{{100, 4}, {200, 8}});
  ASSERT_TRUE(result.ok());
  const auto& segs = *result;
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0], (Segment{0, 100, 4}));
  EXPECT_EQ(segs[1], (Segment{4, 200, 4}));
  EXPECT_EQ(segs[2], (Segment{20, 204, 4}));
}

TEST(MatchSegments, MergesDoublyContiguousRuns) {
  // Adjacent on both sides -> a single segment.
  auto result =
      MatchSegments(ExtentList{{0, 4}, {4, 4}}, ExtentList{{64, 4}, {68, 4}});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ(result->front(), (Segment{0, 64, 8}));
}

TEST(MatchSegments, EmptyLists) {
  auto result = MatchSegments(ExtentList{}, ExtentList{});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(ExtentList, ToStringRendering) {
  EXPECT_EQ(ToString(ExtentList{{0, 4}, {10, 2}}), "[0,4) [10,12)");
  EXPECT_EQ(ToString(ExtentList{}), "");
}

}  // namespace
}  // namespace pvfs
