// Client caching tier: acache/bcache/readahead unit coverage, the PR's
// metadata bugfix regressions (Stat-after-write, Remove partial failure,
// Close-after-Remove), and close-to-open consistency including chaos
// parity between cached and uncached readback (docs/client-caching.md).
#include <gtest/gtest.h>

#include <vector>

#include "common/bytes.hpp"
#include "fault/fault.hpp"
#include "fault/fault_transport.hpp"
#include "obs/metrics.hpp"
#include "pvfs/cache/acache.hpp"
#include "pvfs/cache/bcache.hpp"
#include "pvfs/cache/readahead.hpp"
#include "pvfs/client.hpp"
#include "test_cluster.hpp"

namespace pvfs {
namespace {

using cache::AcacheConfig;
using cache::AttributeCache;
using cache::BcacheConfig;
using cache::BufferCache;
using cache::PlanReadahead;
using cache::ReadaheadConfig;
using testutil::InProcCluster;
using std::chrono::microseconds;

constexpr Striping kStriping{0, 4, 16384};

/// A fresh pattern buffer: b[i] = PatternByte(seed, i).
ByteBuffer Pattern(size_t n, std::uint64_t seed) {
  ByteBuffer b(n);
  FillPattern(b, seed, 0);
  return b;
}

Metadata MakeMeta(FileHandle handle, ByteCount size = 0,
                  std::uint64_t epoch = 1) {
  Metadata m;
  m.handle = handle;
  m.striping = kStriping;
  m.size = size;
  m.epoch = epoch;
  return m;
}

// ---- Attribute cache -------------------------------------------------------

TEST(AttributeCacheTest, DualKeyedHitAndTtlExpiry) {
  AttributeCache cache(AcacheConfig{.enabled = true, .ttl = microseconds(100),
                                    .max_entries = 8});
  const auto t0 = AttributeCache::Clock::time_point{};
  cache.Insert("f", MakeMeta(7, 42), t0);

  auto by_name = cache.LookupName("f", t0 + microseconds(50));
  ASSERT_TRUE(by_name.has_value());
  EXPECT_EQ(by_name->size, 42u);
  auto by_handle = cache.LookupHandle(7, t0 + microseconds(50));
  ASSERT_TRUE(by_handle.has_value());
  EXPECT_EQ(by_handle->handle, 7u);
  EXPECT_EQ(cache.counters().hits, 2u);

  // Past the TTL both keys stop answering; the entry itself survives (the
  // cached epoch is still consultable) until displaced.
  EXPECT_FALSE(cache.LookupName("f", t0 + microseconds(150)).has_value());
  EXPECT_FALSE(cache.LookupHandle(7, t0 + microseconds(150)).has_value());
  EXPECT_EQ(cache.counters().misses, 2u);
  ASSERT_TRUE(cache.CachedEpoch(7).has_value());
  EXPECT_EQ(*cache.CachedEpoch(7), 1u);
}

TEST(AttributeCacheTest, LruEvictsPastBound) {
  AttributeCache cache(AcacheConfig{.enabled = true, .ttl = microseconds(1000),
                                    .max_entries = 2});
  const auto t0 = AttributeCache::Clock::time_point{};
  cache.Insert("a", MakeMeta(1), t0);
  cache.Insert("b", MakeMeta(2), t0);
  // Touch "a" so "b" is the LRU victim when "c" arrives.
  ASSERT_TRUE(cache.LookupName("a", t0).has_value());
  cache.Insert("c", MakeMeta(3), t0);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.LookupName("a", t0).has_value());
  EXPECT_FALSE(cache.LookupName("b", t0).has_value());
  EXPECT_TRUE(cache.LookupName("c", t0).has_value());
  EXPECT_EQ(cache.counters().evictions, 1u);
}

TEST(AttributeCacheTest, InsertReplacesRecreatedName) {
  AttributeCache cache(AcacheConfig{.enabled = true, .ttl = microseconds(1000),
                                    .max_entries = 8});
  const auto t0 = AttributeCache::Clock::time_point{};
  cache.Insert("f", MakeMeta(7), t0);
  // Same name, new handle: remove+recreate seen from the manager. The old
  // handle key must not keep answering.
  cache.Insert("f", MakeMeta(8), t0);
  EXPECT_FALSE(cache.LookupHandle(7, t0).has_value());
  ASSERT_TRUE(cache.LookupHandle(8, t0).has_value());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(AttributeCacheTest, RefreshSameEpochCountsRevalidation) {
  AttributeCache cache(AcacheConfig{.enabled = true, .ttl = microseconds(100),
                                    .max_entries = 8});
  const auto t0 = AttributeCache::Clock::time_point{};
  cache.Insert("f", MakeMeta(7, 0, 3), t0);
  // Stale by TTL, re-fetched from the manager with the same epoch: the
  // refresh re-arms the TTL and counts as a revalidation.
  cache.Insert("f", MakeMeta(7, 10, 3), t0 + microseconds(200));
  EXPECT_EQ(cache.counters().revalidations, 1u);
  auto hit = cache.LookupName("f", t0 + microseconds(250));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->size, 10u);

  cache.InvalidateHandle(7);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.CachedEpoch(7).has_value());
}

// ---- Read-ahead planning ---------------------------------------------------

TEST(ReadaheadPlan, ExtrapolatesConstantStride) {
  ReadaheadConfig config{.enabled = true, .window = 3, .min_regions = 2,
                         .max_bytes = 1 << 20};
  const std::vector<Extent> walk = {{0, 100}, {1000, 100}, {2000, 100}};
  auto plan = PlanReadahead(walk, config);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0], (Extent{3000, 100}));
  EXPECT_EQ(plan[1], (Extent{4000, 100}));
  EXPECT_EQ(plan[2], (Extent{5000, 100}));
}

TEST(ReadaheadPlan, RejectsIrregularPatterns) {
  ReadaheadConfig config{.enabled = true, .window = 4, .min_regions = 2,
                         .max_bytes = 1 << 20};
  // Varying stride.
  EXPECT_TRUE(PlanReadahead(std::vector<Extent>{{0, 100}, {1000, 100},
                                                {2500, 100}},
                            config)
                  .empty());
  // Varying length.
  EXPECT_TRUE(PlanReadahead(std::vector<Extent>{{0, 100}, {1000, 200}},
                            config)
                  .empty());
  // Descending offsets.
  EXPECT_TRUE(PlanReadahead(std::vector<Extent>{{2000, 100}, {1000, 100}},
                            config)
                  .empty());
  // Too few regions to trust a stride.
  EXPECT_TRUE(PlanReadahead(std::vector<Extent>{{0, 100}}, config).empty());
  // Disabled planner plans nothing.
  EXPECT_TRUE(PlanReadahead(std::vector<Extent>{{0, 100}, {1000, 100}},
                            ReadaheadConfig{})
                  .empty());
}

TEST(ReadaheadPlan, BudgetCapsWindow) {
  ReadaheadConfig config{.enabled = true, .window = 8, .min_regions = 2,
                         .max_bytes = 250};
  const std::vector<Extent> walk = {{0, 100}, {1000, 100}};
  // 8 predicted regions would be 800 bytes; the 250-byte budget admits 2.
  EXPECT_EQ(PlanReadahead(walk, config).size(), 2u);
}

// ---- Buffer cache ----------------------------------------------------------

/// Page fetch/flush callbacks over an in-memory backing "file" that also
/// record the flushed intervals (to assert dirty-subrange flushing).
struct FakeBackingFile {
  explicit FakeBackingFile(ByteCount size) : bytes(size, std::byte{0}) {}

  BufferCache::FetchFn Fetch() {
    return [this](FileOffset off, std::span<std::byte> out) -> Status {
      ++fetches;
      for (size_t i = 0; i < out.size(); ++i) {
        out[i] = off + i < bytes.size() ? bytes[off + i] : std::byte{0};
      }
      return Status::Ok();
    };
  }
  BufferCache::FlushFn Flush() {
    return [this](FileOffset off, std::span<const std::byte> data) -> Status {
      flushed.push_back(Extent{off, data.size()});
      for (size_t i = 0; i < data.size(); ++i) bytes[off + i] = data[i];
      return Status::Ok();
    };
  }

  ByteBuffer bytes;
  std::vector<Extent> flushed;
  std::uint64_t fetches = 0;
};

TEST(BufferCacheTest, PartialWriteReadModifyWriteFlushesDirtyIntervalOnly) {
  BufferCache cache(BcacheConfig{.enabled = true, .page_bytes = 256,
                                 .max_bytes = 4096,
                                 .writeback_max_bytes = 4096});
  FakeBackingFile file(4096);
  FillPattern(file.bytes, /*seed=*/5, 0);

  // Partial-page write at [300, 350): fetches page 1 (RMW), dirties 50
  // bytes.
  ByteBuffer in = Pattern(50, 9);
  ASSERT_TRUE(cache.Write(1, 300, in, file.Fetch(), file.Flush()).ok());
  EXPECT_EQ(file.fetches, 1u);
  EXPECT_EQ(cache.dirty_bytes(), 50u);

  // Reading the rest of the page is a hit (the fetched bytes are valid)
  // and returns the merged view: backing pattern around the written run.
  ByteBuffer out(256);
  ASSERT_TRUE(cache.Read(1, 256, out, file.Fetch()).ok());
  EXPECT_EQ(file.fetches, 1u) << "read served from the RMW page";
  EXPECT_EQ(std::vector<std::byte>(out.begin() + 44, out.begin() + 94), in);
  EXPECT_FALSE(FindPatternMismatch({out.data(), 44}, 5, 256).has_value());

  // Flush writes ONLY the dirty 50 bytes — never the whole page, so
  // write-back cannot extend the file past what the app wrote.
  ASSERT_TRUE(cache.FlushHandle(1, file.Flush()).ok());
  ASSERT_EQ(file.flushed.size(), 1u);
  EXPECT_EQ(file.flushed[0], (Extent{300, 50}));
  EXPECT_EQ(cache.dirty_bytes(), 0u);
  EXPECT_EQ(cache.counters().writeback_bytes, 50u);
}

TEST(BufferCacheTest, FullPageWriteSkipsFetch) {
  BufferCache cache(BcacheConfig{.enabled = true, .page_bytes = 256,
                                 .max_bytes = 4096,
                                 .writeback_max_bytes = 4096});
  FakeBackingFile file(4096);
  ByteBuffer in = Pattern(256, 3);
  ASSERT_TRUE(cache.Write(1, 256, in, file.Fetch(), file.Flush()).ok());
  EXPECT_EQ(file.fetches, 0u) << "whole-page write needs nothing fetched";
  ByteBuffer out(256);
  ASSERT_TRUE(cache.Read(1, 256, out, file.Fetch()).ok());
  EXPECT_EQ(out, in);
}

TEST(BufferCacheTest, WritebackBoundFlushesLruDirtyPages) {
  // 4 pages of 256 B resident max, at most 300 dirty bytes: the third
  // dirty page pushes dirty_bytes to 384 and forces the LRU dirty page
  // out through the flush callback.
  BufferCache cache(BcacheConfig{.enabled = true, .page_bytes = 256,
                                 .max_bytes = 1024,
                                 .writeback_max_bytes = 300});
  FakeBackingFile file(4096);
  ByteBuffer in = Pattern(128, 3);
  ASSERT_TRUE(cache.Write(1, 0, in, file.Fetch(), file.Flush()).ok());
  ASSERT_TRUE(cache.Write(1, 256, in, file.Fetch(), file.Flush()).ok());
  EXPECT_TRUE(file.flushed.empty()) << "256 dirty bytes within bound";
  ASSERT_TRUE(cache.Write(1, 512, in, file.Fetch(), file.Flush()).ok());
  ASSERT_FALSE(file.flushed.empty());
  EXPECT_EQ(file.flushed[0].offset, 0u) << "oldest dirty page flushed first";
  EXPECT_LE(cache.dirty_bytes(), 300u);
}

TEST(BufferCacheTest, EvictionSkipsDirtyPages) {
  // Residency bound of 2 pages; dirty pages must survive eviction.
  BufferCache cache(BcacheConfig{.enabled = true, .page_bytes = 256,
                                 .max_bytes = 512,
                                 .writeback_max_bytes = 4096});
  FakeBackingFile file(4096);
  ByteBuffer in = Pattern(64, 3);
  ASSERT_TRUE(cache.Write(1, 0, in, file.Fetch(), file.Flush()).ok());
  ByteBuffer out(64);
  ASSERT_TRUE(cache.Read(1, 512, out, file.Fetch()).ok());
  ASSERT_TRUE(cache.Read(1, 1024, out, file.Fetch()).ok());
  EXPECT_LE(cache.cached_bytes(), 512u);
  EXPECT_TRUE(cache.HasDirty(1)) << "dirty page held through eviction";
  // The dirty bytes are intact.
  ASSERT_TRUE(cache.Read(1, 0, out, file.Fetch()).ok());
  EXPECT_EQ(out, in);
}

TEST(BufferCacheTest, PrefetchTagsPagesAndAttributesHits) {
  BufferCache cache(BcacheConfig{.enabled = true, .page_bytes = 256,
                                 .max_bytes = 4096,
                                 .writeback_max_bytes = 4096});
  FakeBackingFile file(4096);
  FillPattern(file.bytes, 5, 0);
  ASSERT_TRUE(cache.Prefetch(1, Extent{256, 512}, file.Fetch()).ok());
  EXPECT_EQ(cache.counters().prefetched_pages, 2u);
  EXPECT_EQ(cache.counters().hits, 0u) << "prefetch is not a reference";

  ByteBuffer out(256);
  ASSERT_TRUE(cache.Read(1, 256, out, file.Fetch()).ok());
  EXPECT_EQ(cache.counters().readahead_hits, 1u);
  ASSERT_TRUE(cache.Read(1, 256, out, file.Fetch()).ok());
  EXPECT_EQ(cache.counters().readahead_hits, 1u)
      << "only the FIRST hit on a prefetched page counts";
  EXPECT_FALSE(FindPatternMismatch(out, 5, 256).has_value());
}

TEST(BufferCacheTest, EpochChangeDropsCleanKeepsDirty) {
  BufferCache cache(BcacheConfig{.enabled = true, .page_bytes = 256,
                                 .max_bytes = 4096,
                                 .writeback_max_bytes = 4096});
  FakeBackingFile file(4096);
  FillPattern(file.bytes, 5, 0);
  ByteBuffer out(256);
  ASSERT_TRUE(cache.Read(1, 0, out, file.Fetch()).ok());  // clean page 0
  ByteBuffer in = Pattern(64, 9);
  ASSERT_TRUE(cache.Write(1, 256, in, file.Fetch(), file.Flush()).ok());

  cache.NoteEpoch(1, 1);  // first observation: records, drops nothing
  EXPECT_EQ(cache.counters().evictions, 0u);
  cache.NoteEpoch(1, 2);  // the file changed behind us
  EXPECT_EQ(cache.counters().evictions, 1u) << "clean page dropped";
  EXPECT_TRUE(cache.HasDirty(1)) << "dirty page survives the epoch bump";

  // The next read of page 0 re-fetches.
  const std::uint64_t fetches_before = file.fetches;
  ASSERT_TRUE(cache.Read(1, 0, out, file.Fetch()).ok());
  EXPECT_EQ(file.fetches, fetches_before + 1);
}

// ---- Metadata bugfix regressions (uncached client) ------------------------

TEST(ClientCacheBugfix, StatReportsHighWaterBeforeClose) {
  InProcCluster cluster(4);
  Client client = cluster.MakeClient();
  auto fd = client.Create("f", kStriping);
  ASSERT_TRUE(fd.ok());

  ByteBuffer data = Pattern(100'000, 7);
  ASSERT_TRUE(client.Write(*fd, 0, data).ok());
  // The manager learns the size only at Close; Stat must report the
  // descriptor's high-water mark, not the manager's stale zero.
  auto st = client.Stat(*fd);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 100'000u);
  // And the refresh must not have clobbered the local mark: a second Stat
  // still reports it.
  auto st2 = client.Stat(*fd);
  ASSERT_TRUE(st2.ok());
  EXPECT_EQ(st2->size, 100'000u);

  ASSERT_TRUE(client.Close(*fd).ok());
  auto fd2 = client.Open("f");
  ASSERT_TRUE(fd2.ok());
  auto st3 = client.Stat(*fd2);
  ASSERT_TRUE(st3.ok());
  EXPECT_EQ(st3->size, 100'000u) << "Close published the size";
  EXPECT_TRUE(client.Close(*fd2).ok());
}

TEST(ClientCacheBugfix, RemovePartialFailureKeepsNameForRerun) {
  InProcCluster cluster(4);
  fault::FaultInjector injector(fault::FaultConfig{.seed = 11});
  fault::FaultInjectingTransport chaos(cluster.transport.get(), &injector);
  Client client(&chaos, Client::Options{});

  auto fd = client.Create("doomed", kStriping);
  ASSERT_TRUE(fd.ok());
  ByteBuffer data = Pattern(256 * 1024, 13);
  ASSERT_TRUE(client.Write(*fd, 0, data).ok());
  ASSERT_TRUE(client.Close(*fd).ok());

  // One iod refuses exactly one call: the first Remove loses one data-drop
  // leg. It must visit every other leg, aggregate the failure, and keep
  // the manager name so the operation can be rerun.
  injector.CrashServer(1, /*down_calls=*/1);
  Status first = client.Remove("doomed");
  ASSERT_FALSE(first.ok());
  EXPECT_TRUE(client.Open("doomed").ok()) << "name survives a partial drop";

  // Rerun: the crashed iod is back; already-dropped legs are idempotent
  // no-ops. Everything is gone afterwards.
  EXPECT_TRUE(client.Remove("doomed").ok());
  EXPECT_EQ(client.Open("doomed").status().code(), ErrorCode::kNotFound);
}

TEST(ClientCacheBugfix, CloseAfterConcurrentRemoveSucceeds) {
  InProcCluster cluster(4);
  Client writer = cluster.MakeClient();
  Client remover = cluster.MakeClient();

  auto fd = writer.Create("ephemeral", kStriping);
  ASSERT_TRUE(fd.ok());
  ByteBuffer data = Pattern(64 * 1024, 17);
  ASSERT_TRUE(writer.Write(*fd, 0, data).ok());

  // The file is removed while the writer still holds it open; the
  // writer's Close sends SetSize for a dead handle. The manager's typed
  // not-found is success-on-close, not an error.
  ASSERT_TRUE(remover.Remove("ephemeral").ok());
  EXPECT_TRUE(writer.Close(*fd).ok());
}

// ---- Attribute cache wired into the client ---------------------------------

TEST(ClientCache, AcacheCutsManagerMessagesOnRepeatedOpenStat) {
  InProcCluster cluster(4);
  Client::Options cached_opts;
  cached_opts.acache.enabled = true;
  cached_opts.acache.ttl = microseconds(60'000'000);
  Client cached(cluster.transport.get(), cached_opts);
  Client uncached = cluster.MakeClient();

  auto fd = cached.Create("hot", kStriping);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(cached.Close(*fd).ok());

  constexpr int kRounds = 20;
  const auto churn = [&](Client& c) {
    for (int i = 0; i < kRounds; ++i) {
      auto f = c.Open("hot");
      ASSERT_TRUE(f.ok());
      ASSERT_TRUE(c.Stat(*f).ok());
      ASSERT_TRUE(c.Close(*f).ok());
    }
  };
  cached.ResetStats();
  churn(cached);
  uncached.ResetStats();
  churn(uncached);

  const auto cached_msgs = cached.stats().manager_messages;
  const auto uncached_msgs = uncached.stats().manager_messages;
  EXPECT_EQ(uncached_msgs, 2u * kRounds) << "lookup + stat per round";
  // The acceptance bar: at least 5x fewer manager messages. (The cached
  // client pays one lookup to warm the cache at most.)
  EXPECT_LE(cached_msgs * 5, uncached_msgs)
      << "cached=" << cached_msgs << " uncached=" << uncached_msgs;
  const auto counters = cached.cache_counters();
  EXPECT_GE(counters.acache.hits, 2u * kRounds - 2u);
}

TEST(ClientCache, ZeroTtlRevalidatesEveryLookup) {
  InProcCluster cluster(4);
  Client::Options opts;
  opts.acache.enabled = true;
  opts.acache.ttl = microseconds(0);
  Client client(cluster.transport.get(), opts);

  auto fd = client.Create("f", kStriping);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(client.Close(*fd).ok());
  client.ResetStats();
  for (int i = 0; i < 3; ++i) {
    auto f = client.Open("f");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE(client.Close(*f).ok());
  }
  EXPECT_EQ(client.stats().manager_messages, 3u)
      << "ttl=0 forces a manager lookup per open";
  EXPECT_EQ(client.cache_counters().acache.hits, 0u);
}

TEST(ClientCache, RemoveInvalidatesAcacheEntry) {
  InProcCluster cluster(4);
  Client::Options opts;
  opts.acache.enabled = true;
  opts.acache.ttl = microseconds(60'000'000);
  Client client(cluster.transport.get(), opts);

  auto fd = client.Create("gone", kStriping);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(client.Close(*fd).ok());
  auto warm = client.Open("gone");
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(client.Close(*warm).ok());
  ASSERT_TRUE(client.Remove("gone").ok());
  // A cached-entry hit would "open" the removed file; invalidation must
  // force the manager round trip, which reports not-found.
  EXPECT_EQ(client.Open("gone").status().code(), ErrorCode::kNotFound);
}

// ---- Close-to-open consistency over the buffer cache -----------------------

Client::Options CachedOptions() {
  Client::Options opts;
  opts.acache.enabled = true;
  opts.acache.ttl = microseconds(60'000'000);
  opts.bcache.enabled = true;
  opts.bcache.page_bytes = 4096;
  opts.bcache.max_bytes = 1 << 20;
  opts.bcache.writeback_max_bytes = 256 * 1024;
  return opts;
}

TEST(ClientCacheConsistency, WriterCloseThenReaderOpenSeesData) {
  InProcCluster cluster(4);
  Client writer(cluster.transport.get(), CachedOptions());
  Client reader(cluster.transport.get(), CachedOptions());

  auto wfd = writer.Create("shared", kStriping);
  ASSERT_TRUE(wfd.ok());
  ByteBuffer data = Pattern(100'000, 21);
  ASSERT_TRUE(writer.Write(*wfd, 0, data).ok());
  ASSERT_TRUE(writer.Close(*wfd).ok()) << "flush-on-close";

  auto rfd = reader.Open("shared");
  ASSERT_TRUE(rfd.ok());
  ByteBuffer back(data.size());
  ASSERT_TRUE(reader.Read(*rfd, 0, back).ok());
  EXPECT_EQ(back, data);
  auto st = reader.Stat(*rfd);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, data.size());
  ASSERT_TRUE(reader.Close(*rfd).ok());
}

TEST(ClientCacheConsistency, EpochInvalidationDropsStaleReaderPages) {
  InProcCluster cluster(4);
  Client writer(cluster.transport.get(), CachedOptions());
  // The reader revalidates at every Open (ttl=0) but keeps its data pages
  // between opens — the epoch check, not the TTL, must drop them.
  Client::Options reader_opts = CachedOptions();
  reader_opts.acache.ttl = microseconds(0);
  Client reader(cluster.transport.get(), reader_opts);

  auto wfd = writer.Create("versioned", kStriping);
  ASSERT_TRUE(wfd.ok());
  ByteBuffer v1 = Pattern(50'000, 31);
  ASSERT_TRUE(writer.Write(*wfd, 0, v1).ok());
  ASSERT_TRUE(writer.Close(*wfd).ok());

  auto r1 = reader.Open("versioned");
  ASSERT_TRUE(r1.ok());
  ByteBuffer back(v1.size());
  ASSERT_TRUE(reader.Read(*r1, 0, back).ok());
  EXPECT_EQ(back, v1);
  ASSERT_TRUE(reader.Close(*r1).ok());

  // Writer publishes new content (same size would not bump meta.size, but
  // every accepted SetSize bumps the EPOCH — that is what invalidates).
  auto wfd2 = writer.Open("versioned");
  ASSERT_TRUE(wfd2.ok());
  ByteBuffer v2 = Pattern(50'000, 32);
  ASSERT_TRUE(writer.Write(*wfd2, 0, v2).ok());
  ASSERT_TRUE(writer.Close(*wfd2).ok());

  auto r2 = reader.Open("versioned");
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(reader.Read(*r2, 0, back).ok());
  EXPECT_EQ(back, v2) << "open-time epoch check dropped the stale pages";
  ASSERT_TRUE(reader.Close(*r2).ok());
}

TEST(ClientCacheConsistency, StaleTtlReaderServesCachedThenRevalidates) {
  InProcCluster cluster(4);
  Client writer(cluster.transport.get(), CachedOptions());
  Client reader(cluster.transport.get(), CachedOptions());  // long TTL

  auto wfd = writer.Create("ttl", kStriping);
  ASSERT_TRUE(wfd.ok());
  ByteBuffer v1 = Pattern(20'000, 41);
  ASSERT_TRUE(writer.Write(*wfd, 0, v1).ok());
  ASSERT_TRUE(writer.Close(*wfd).ok());

  auto r1 = reader.Open("ttl");
  ASSERT_TRUE(r1.ok());
  ByteBuffer back(v1.size());
  ASSERT_TRUE(reader.Read(*r1, 0, back).ok());
  ASSERT_TRUE(reader.Close(*r1).ok());

  auto wfd2 = writer.Open("ttl");
  ASSERT_TRUE(wfd2.ok());
  ByteBuffer v2 = Pattern(20'000, 42);
  ASSERT_TRUE(writer.Write(*wfd2, 0, v2).ok());
  ASSERT_TRUE(writer.Close(*wfd2).ok());

  // Within the TTL the reader's Open legitimately serves the cached entry
  // and its pages: close-to-open bounds staleness by the TTL, it does not
  // eliminate it.
  auto r2 = reader.Open("ttl");
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(reader.Read(*r2, 0, back).ok());
  EXPECT_EQ(back, v1) << "bounded staleness within the TTL window";
  ASSERT_TRUE(reader.Close(*r2).ok());

  // An explicit flush of the attribute entry (what a TTL expiry does)
  // forces revalidation; the epoch moved, so the pages drop too.
  reader.InvalidateCache("ttl");
  auto r3 = reader.Open("ttl");
  ASSERT_TRUE(r3.ok());
  ASSERT_TRUE(reader.Read(*r3, 0, back).ok());
  EXPECT_EQ(back, v2);
  ASSERT_TRUE(reader.Close(*r3).ok());
}

TEST(ClientCacheConsistency, LockFlushPublishesBufferedWrites) {
  InProcCluster cluster(4);
  Client writer(cluster.transport.get(), CachedOptions());
  Client reader = cluster.MakeClient();  // uncached: sees raw server state

  auto wfd = writer.Create("locked", kStriping);
  ASSERT_TRUE(wfd.ok());
  auto rfd = reader.Open("locked");
  ASSERT_TRUE(rfd.ok());

  ByteBuffer data = Pattern(8192, 51);
  ASSERT_TRUE(writer.Write(*wfd, 0, data).ok());
  ByteBuffer raw(data.size());
  ASSERT_TRUE(reader.Read(*rfd, 0, raw).ok());
  EXPECT_EQ(raw, ByteBuffer(data.size(), std::byte{0}))
      << "write still buffered client-side";

  // Acquiring the lock flushes (flush-on-lock): the uncached reader now
  // sees the bytes.
  ASSERT_TRUE(writer.TryLockRange(*wfd, Extent{0, 0}).ok());
  ASSERT_TRUE(reader.Read(*rfd, 0, raw).ok());
  EXPECT_EQ(raw, data);
  ASSERT_TRUE(writer.UnlockRange(*wfd, Extent{0, 0}).ok());
  ASSERT_TRUE(writer.Close(*wfd).ok());
  ASSERT_TRUE(reader.Close(*rfd).ok());
}

TEST(ClientCacheConsistency, BcacheHighWaterMatchesAppWritesNotPages) {
  InProcCluster cluster(4);
  Client client(cluster.transport.get(), CachedOptions());
  auto fd = client.Create("small", kStriping);
  ASSERT_TRUE(fd.ok());
  // 100 bytes into a 4 KiB-page cache: the flushed size must be 100, not
  // a page worth.
  ByteBuffer data = Pattern(100, 61);
  ASSERT_TRUE(client.Write(*fd, 0, data).ok());
  ASSERT_TRUE(client.Close(*fd).ok());
  auto fd2 = client.Open("small");
  ASSERT_TRUE(fd2.ok());
  auto st = client.Stat(*fd2);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->size, 100u);
  ASSERT_TRUE(client.Close(*fd2).ok());
}

TEST(ClientCacheConsistency, ReadaheadPrefetchesStridedContinuation) {
  InProcCluster cluster(4);
  Client::Options opts = CachedOptions();
  opts.readahead.enabled = true;
  opts.readahead.window = 8;
  opts.readahead.max_bytes = 1 << 20;
  Client client(cluster.transport.get(), opts);

  auto fd = client.Create("strided", kStriping);
  ASSERT_TRUE(fd.ok());
  ByteBuffer content = Pattern(512 * 1024, 71);
  ASSERT_TRUE(client.Write(*fd, 0, content).ok());
  ASSERT_TRUE(client.Close(*fd).ok());

  auto fd2 = client.Open("strided");
  ASSERT_TRUE(fd2.ok());
  // Constant-stride list read: 4 regions of 4 KiB every 16 KiB. The
  // planner prefetches the continuation, so the NEXT strided read hits.
  const auto strided = [](FileOffset base, std::uint32_t n) {
    std::vector<Extent> v;
    for (std::uint32_t i = 0; i < n; ++i) {
      v.push_back(Extent{base + i * 16384, 4096});
    }
    return v;
  };
  const std::vector<Extent> first = strided(0, 4);
  ByteBuffer buf(4 * 4096);
  const std::vector<Extent> mem = {Extent{0, buf.size()}};
  ASSERT_TRUE(client.ReadList(*fd2, mem, buf, first).ok());
  EXPECT_GT(client.cache_counters().bcache.prefetched_pages, 0u);

  const std::vector<Extent> second = strided(4 * 16384, 4);
  ASSERT_TRUE(client.ReadList(*fd2, mem, buf, second).ok());
  EXPECT_GT(client.cache_counters().bcache.readahead_hits, 0u)
      << "the predicted continuation was already resident";
  // Readback correctness of the second stride.
  ByteBuffer expect = GatherExtents(content, second);
  EXPECT_EQ(buf, expect);
  ASSERT_TRUE(client.Close(*fd2).ok());
}

// ---- Chaos: cached and uncached readback stay bit-identical -----------------

TEST(ClientCacheChaos, CachedReadbackMatchesUncachedUnderFaults) {
  InProcCluster cluster(4);
  fault::FaultConfig faults;
  faults.seed = 97;
  faults.drop_rate = 0.05;
  faults.crash_rate = 0.01;
  faults.crash_down_calls = 6;
  fault::FaultInjector injector(faults);
  fault::FaultInjectingTransport chaos(cluster.transport.get(), &injector);

  Client::Options retrying;
  retrying.retry.max_attempts = 10'000;
  retrying.retry.initial_backoff = microseconds(1);
  retrying.retry.max_backoff = microseconds(100);
  Client::Options cached_opts = CachedOptions();
  cached_opts.retry = retrying.retry;
  cached_opts.readahead.enabled = true;

  Client writer(&chaos, cached_opts);
  auto fd = writer.Create("/chaos/parity", kStriping);
  ASSERT_TRUE(fd.ok());
  ByteBuffer content = Pattern(256 * 1024, 83);
  // Strided writes through the cache under frame drops and crash-restart.
  const std::vector<Extent> file_regions = [&] {
    std::vector<Extent> v;
    for (FileOffset off = 0; off < content.size(); off += 8192) {
      v.push_back(Extent{off, 8192});
    }
    return v;
  }();
  const std::vector<Extent> mem = {Extent{0, content.size()}};
  ASSERT_TRUE(writer.WriteList(*fd, mem, content, file_regions).ok());
  ASSERT_TRUE(writer.Close(*fd).ok());

  Client cached_reader(&chaos, cached_opts);
  Client uncached_reader(&chaos, retrying);
  auto cfd = cached_reader.Open("/chaos/parity");
  auto ufd = uncached_reader.Open("/chaos/parity");
  ASSERT_TRUE(cfd.ok());
  ASSERT_TRUE(ufd.ok());
  ByteBuffer via_cache(content.size());
  ByteBuffer via_wire(content.size());
  ASSERT_TRUE(
      cached_reader.ReadList(*cfd, mem, via_cache, file_regions).ok());
  ASSERT_TRUE(
      uncached_reader.ReadList(*ufd, mem, via_wire, file_regions).ok());
  EXPECT_EQ(via_cache, content);
  EXPECT_EQ(via_wire, content);
  ASSERT_TRUE(cached_reader.Close(*cfd).ok());
  ASSERT_TRUE(uncached_reader.Close(*ufd).ok());
}

// ---- Metrics plumbing -------------------------------------------------------

TEST(ClientCache, MetricsExportCarriesCacheCounters) {
  InProcCluster cluster(4);
  Client client(cluster.transport.get(), CachedOptions());
  auto fd = client.Create("m", kStriping);
  ASSERT_TRUE(fd.ok());
  ByteBuffer data = Pattern(8192, 91);
  ASSERT_TRUE(client.Write(*fd, 0, data).ok());
  ByteBuffer back(8192);
  ASSERT_TRUE(client.Read(*fd, 0, back).ok());
  ASSERT_TRUE(client.Close(*fd).ok());

  obs::Registry reg;
  client.ExportMetrics(reg);
  EXPECT_GT(reg.Counter("client.cache.hits", {{"tier", "bcache"}}).value(),
            0u);
  EXPECT_GT(
      reg.Counter("client.cache.writeback_bytes", {{"tier", "bcache"}})
          .value(),
      0u);
  const obs::JsonValue json = client.StatsJson();
  const std::string text = json.Dump();
  EXPECT_NE(text.find("\"cache\""), std::string::npos);
  EXPECT_NE(text.find("\"writeback_bytes\""), std::string::npos);
}

}  // namespace
}  // namespace pvfs
