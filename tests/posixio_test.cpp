// POSIX-style stream adapter tests.
#include "pvfs/posixio.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "test_cluster.hpp"

namespace pvfs {
namespace {

using testutil::InProcCluster;

constexpr Striping kDefault{0, 8, 16384};

TEST(PvfsStream, SequentialWriteThenRead) {
  InProcCluster cluster;
  Client client = cluster.MakeClient();
  auto stream = PvfsStream::Create(&client, "f", kDefault);
  ASSERT_TRUE(stream.ok());

  ByteBuffer data(100000);
  FillPattern(data, 1, 0);
  // Write in uneven chunks.
  size_t pos = 0;
  for (size_t chunk : {1000, 37, 65536, 33427}) {
    ASSERT_TRUE(
        stream->Write(std::span{data}.subspan(pos, chunk)).ok());
    pos += chunk;
  }
  EXPECT_EQ(stream->Tell(), data.size());

  auto where = stream->Seek(0, PvfsStream::Whence::kSet);
  ASSERT_TRUE(where.ok());
  EXPECT_EQ(*where, 0u);

  ByteBuffer out(data.size());
  auto n = stream->Read(out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, data.size());
  EXPECT_EQ(out, data);
}

TEST(PvfsStream, ReadStopsAtEof) {
  InProcCluster cluster;
  Client client = cluster.MakeClient();
  auto stream = PvfsStream::Create(&client, "f", kDefault);
  ASSERT_TRUE(stream.ok());
  ByteBuffer data(100);
  ASSERT_TRUE(stream->Write(data).ok());
  ASSERT_TRUE(stream->Seek(50, PvfsStream::Whence::kSet).ok());

  ByteBuffer out(200);
  auto n = stream->Read(out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 50u);  // short read at EOF
  auto n2 = stream->Read(out);
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(*n2, 0u);  // at EOF
}

TEST(PvfsStream, SeekWhenceSemantics) {
  InProcCluster cluster;
  Client client = cluster.MakeClient();
  auto stream = PvfsStream::Create(&client, "f", kDefault);
  ASSERT_TRUE(stream.ok());
  ByteBuffer data(1000);
  ASSERT_TRUE(stream->Write(data).ok());

  EXPECT_EQ(stream->Seek(100, PvfsStream::Whence::kSet).value(), 100u);
  EXPECT_EQ(stream->Seek(50, PvfsStream::Whence::kCurrent).value(), 150u);
  EXPECT_EQ(stream->Seek(-150, PvfsStream::Whence::kCurrent).value(), 0u);
  EXPECT_EQ(stream->Seek(-10, PvfsStream::Whence::kEnd).value(), 990u);
  EXPECT_FALSE(stream->Seek(-1, PvfsStream::Whence::kSet).ok());
}

TEST(PvfsStream, SeekPastEndThenWriteLeavesHole) {
  InProcCluster cluster;
  Client client = cluster.MakeClient();
  auto stream = PvfsStream::Create(&client, "f", kDefault);
  ASSERT_TRUE(stream.ok());
  ByteBuffer tail(10, std::byte{0xAB});
  ASSERT_TRUE(stream->Seek(100000, PvfsStream::Whence::kSet).ok());
  ASSERT_TRUE(stream->Write(tail).ok());

  ASSERT_TRUE(stream->Seek(0, PvfsStream::Whence::kSet).ok());
  ByteBuffer out(100010);
  auto n = stream->Read(out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 100010u);
  EXPECT_EQ(out[0], std::byte{0});        // hole reads zero
  EXPECT_EQ(out[100000], std::byte{0xAB});
}

TEST(PvfsStream, OpenSeesManagerSize) {
  InProcCluster cluster;
  Client client = cluster.MakeClient();
  {
    auto writer = PvfsStream::Create(&client, "f", kDefault);
    ASSERT_TRUE(writer.ok());
    ByteBuffer data(12345);
    FillPattern(data, 3, 0);
    ASSERT_TRUE(writer->Write(data).ok());
    ASSERT_TRUE(writer->Close().ok());
  }
  auto reader = PvfsStream::Open(&client, "f");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->Seek(0, PvfsStream::Whence::kEnd).value(), 12345u);
  ASSERT_TRUE(reader->Seek(0, PvfsStream::Whence::kSet).ok());
  ByteBuffer out(20000);
  EXPECT_EQ(reader->Read(out).value(), 12345u);
  EXPECT_FALSE(
      FindPatternMismatch(std::span{out}.first(12345), 3, 0).has_value());
}

TEST(PvfsStream, ClosedStreamRejectsOps) {
  InProcCluster cluster;
  Client client = cluster.MakeClient();
  auto stream = PvfsStream::Create(&client, "f", kDefault);
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(stream->Close().ok());
  ByteBuffer buf(10);
  EXPECT_FALSE(stream->Write(buf).ok());
  EXPECT_FALSE(stream->Read(buf).ok());
  EXPECT_FALSE(stream->Seek(0, PvfsStream::Whence::kSet).ok());
  EXPECT_FALSE(stream->Close().ok());
}

TEST(PvfsPartition, RejectsBadGeometry) {
  InProcCluster cluster;
  Client client = cluster.MakeClient();
  auto stream = PvfsStream::Create(&client, "f", kDefault);
  ASSERT_TRUE(stream.ok());
  EXPECT_FALSE(stream->SetPartition({0, 0, 100}).ok());   // zero gsize
  EXPECT_FALSE(stream->SetPartition({0, 200, 100}).ok()); // gsize > stride
  EXPECT_TRUE(stream->SetPartition({0, 100, 100}).ok());  // dense partition
}

TEST(PvfsPartition, StridedViewReadsOnlyItsBytes) {
  InProcCluster cluster;
  Client client = cluster.MakeClient();
  auto stream = PvfsStream::Create(&client, "f", kDefault);
  ASSERT_TRUE(stream.ok());

  // Interleave four 64-byte lanes; lane k owns bytes [k*64, k*64+64) of
  // every 256-byte cycle.
  constexpr int kCycles = 32;
  ByteBuffer whole(kCycles * 256);
  FillPattern(whole, 1, 0);
  ASSERT_TRUE(stream->Write(whole).ok());

  for (int lane = 0; lane < 4; ++lane) {
    ASSERT_TRUE(stream
                    ->SetPartition({static_cast<FileOffset>(lane) * 64, 64,
                                    256})
                    .ok());
    EXPECT_EQ(stream->Tell(), 0u);
    EXPECT_EQ(stream->Seek(0, PvfsStream::Whence::kEnd).value(),
              kCycles * 64u);
    ASSERT_TRUE(stream->Seek(0, PvfsStream::Whence::kSet).ok());
    ByteBuffer lane_bytes(kCycles * 64);
    EXPECT_EQ(stream->Read(lane_bytes).value(), kCycles * 64u);
    for (int c = 0; c < kCycles; ++c) {
      for (int i = 0; i < 64; ++i) {
        ASSERT_EQ(lane_bytes[c * 64 + i], whole[c * 256 + lane * 64 + i])
            << "lane " << lane << " cycle " << c;
      }
    }
  }
}

TEST(PvfsPartition, PartitionedWritersInterleaveLikeCyclic) {
  // The pre-list-I/O way to produce the paper's 1-D cyclic distribution:
  // each writer sets a partition (offset = rank*block, gsize = block,
  // stride = ranks*block) and writes its data with plain stream calls.
  InProcCluster cluster;
  constexpr int kRanks = 4;
  constexpr ByteCount kBlock = 512;
  constexpr int kBlocks = 16;
  {
    Client setup = cluster.MakeClient();
    auto fd = setup.Create("cyc", kDefault);
    ASSERT_TRUE(fd.ok());
  }
  for (int r = 0; r < kRanks; ++r) {
    Client client = cluster.MakeClient();
    auto stream = PvfsStream::Open(&client, "cyc");
    ASSERT_TRUE(stream.ok());
    ASSERT_TRUE(stream
                    ->SetPartition({static_cast<FileOffset>(r) * kBlock,
                                    kBlock, kRanks * kBlock})
                    .ok());
    ByteBuffer mine(kBlocks * kBlock);
    FillPattern(mine, 40 + r, 0);
    ASSERT_TRUE(stream->Write(mine).ok());
  }

  Client reader = cluster.MakeClient();
  auto fd = reader.Open("cyc");
  ByteBuffer image(kRanks * kBlocks * kBlock);
  ASSERT_TRUE(reader.Read(*fd, 0, image).ok());
  for (int b = 0; b < kBlocks; ++b) {
    for (int r = 0; r < kRanks; ++r) {
      for (ByteCount i = 0; i < kBlock; ++i) {
        ASSERT_EQ(image[(b * kRanks + r) * kBlock + i],
                  PatternByte(40 + r, static_cast<ByteCount>(b) * kBlock + i))
            << "block " << b << " rank " << r;
      }
    }
  }
}

TEST(PvfsPartition, ReadsCrossGroupBoundaries) {
  InProcCluster cluster;
  Client client = cluster.MakeClient();
  auto stream = PvfsStream::Create(&client, "f", kDefault);
  ASSERT_TRUE(stream.ok());
  ByteBuffer whole(1000);
  FillPattern(whole, 2, 0);
  ASSERT_TRUE(stream->Write(whole).ok());

  ASSERT_TRUE(stream->SetPartition({10, 30, 100}).ok());
  // Read 75 partition bytes starting at partition byte 20: spans groups
  // 0 (tail 10 B), 1 (30 B), 2 (30 B), 3 (head 5 B).
  ASSERT_TRUE(stream->Seek(20, PvfsStream::Whence::kSet).ok());
  ByteBuffer out(75);
  EXPECT_EQ(stream->Read(out).value(), 75u);
  ByteCount pos = 0;
  for (auto [group, from, len] :
       {std::tuple{0, 30, 10}, {1, 10, 30}, {2, 10, 30}, {3, 10, 5}}) {
    for (int i = 0; i < len; ++i) {
      ASSERT_EQ(out[pos + i], whole[10 + group * 100 + (from - 10) + i])
          << "group " << group;
    }
    pos += len;
  }
  EXPECT_EQ(stream->Tell(), 95u);
}

TEST(PvfsPartition, ClearRestoresPlainView) {
  InProcCluster cluster;
  Client client = cluster.MakeClient();
  auto stream = PvfsStream::Create(&client, "f", kDefault);
  ASSERT_TRUE(stream.ok());
  ByteBuffer whole(500);
  FillPattern(whole, 3, 0);
  ASSERT_TRUE(stream->Write(whole).ok());
  ASSERT_TRUE(stream->SetPartition({0, 10, 50}).ok());
  EXPECT_EQ(stream->Seek(0, PvfsStream::Whence::kEnd).value(), 100u);
  stream->ClearPartition();
  EXPECT_EQ(stream->Tell(), 0u);
  EXPECT_EQ(stream->Seek(0, PvfsStream::Whence::kEnd).value(), 500u);
}

TEST(PvfsStream, MoveTransfersOwnership) {
  InProcCluster cluster;
  Client client = cluster.MakeClient();
  auto stream = PvfsStream::Create(&client, "f", kDefault);
  ASSERT_TRUE(stream.ok());
  ByteBuffer data(100);
  ASSERT_TRUE(stream->Write(data).ok());

  PvfsStream moved = std::move(*stream);
  EXPECT_EQ(moved.Tell(), 100u);
  ASSERT_TRUE(moved.Seek(0, PvfsStream::Whence::kSet).ok());
  ByteBuffer out(100);
  EXPECT_EQ(moved.Read(out).value(), 100u);
}

}  // namespace
}  // namespace pvfs
