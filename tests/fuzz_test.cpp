// Robustness: random and mutated bytes thrown at every decoder, and fault
// injection on the transport. Nothing may crash; every failure must
// surface as a Status.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "pvfs/client.hpp"
#include "pvfs/iod.hpp"
#include "pvfs/manager.hpp"
#include "test_cluster.hpp"

namespace pvfs {
namespace {

ByteBuffer RandomBytes(SplitMix64& rng, size_t max_len) {
  ByteBuffer out(rng.Uniform(0, max_len));
  for (std::byte& b : out) {
    b = std::byte{static_cast<unsigned char>(rng.Next())};
  }
  return out;
}

TEST(Fuzz, RandomBytesIntoDaemonsNeverCrash) {
  Manager manager(8);
  IoDaemon iod(0);
  SplitMix64 rng(42);
  for (int i = 0; i < 3000; ++i) {
    ByteBuffer junk = RandomBytes(rng, 300);
    auto mresp = DecodeResponse(manager.HandleMessage(junk));
    ASSERT_TRUE(mresp.ok());  // envelope always well-formed
    auto iresp = DecodeResponse(iod.HandleMessage(junk));
    ASSERT_TRUE(iresp.ok());
  }
}

TEST(Fuzz, TruncatedValidMessagesFailCleanly) {
  Manager manager(8);
  IoDaemon iod(0);
  IoRequest io;
  io.handle = 1;
  io.striping = Striping{0, 8, 16384};
  io.regions = {{0, 100}, {300, 100}};
  ByteBuffer full = io.Encode();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    ByteBuffer trunc(full.begin(),
                     full.begin() + static_cast<std::ptrdiff_t>(cut));
    auto resp = DecodeResponse(iod.HandleMessage(trunc));
    ASSERT_TRUE(resp.ok());
    EXPECT_FALSE(resp->status.ok()) << "cut at " << cut;
  }
}

TEST(Fuzz, MutatedCreateRequestsEitherFailOrApplyValidStriping) {
  Manager manager(8);
  CreateRequest req{"victim", Striping{0, 8, 16384}};
  ByteBuffer base = req.Encode();
  SplitMix64 rng(7);
  for (int i = 0; i < 2000; ++i) {
    ByteBuffer mutated = base;
    size_t at = rng.Uniform(0, mutated.size() - 1);
    mutated[at] = std::byte{static_cast<unsigned char>(rng.Next())};
    auto resp = DecodeResponse(manager.HandleMessage(mutated));
    ASSERT_TRUE(resp.ok());
    // Either rejected, or it created a file whose striping passed the
    // manager's own validation; surviving all 2000 mutations is the test.
  }
}

TEST(Fuzz, ResponseDecoderHandlesGarbage) {
  SplitMix64 rng(9);
  for (int i = 0; i < 2000; ++i) {
    ByteBuffer junk = RandomBytes(rng, 200);
    auto resp = DecodeResponse(junk);      // may fail, must not crash
    auto meta = MetadataResponse::Decode(junk);
    auto io = IoResponse::Decode(junk);
    (void)resp;
    (void)meta;
    (void)io;
  }
  SUCCEED();
}

// ---- Fault injection ----------------------------------------------------------

/// Wraps a transport and fails every `period`-th call with a transport
/// error, or corrupts the response by truncation.
class FaultyTransport final : public Transport {
 public:
  enum class Mode { kError, kTruncate };

  FaultyTransport(Transport* inner, int period, Mode mode)
      : inner_(inner), period_(period), mode_(mode) {}

  Result<std::vector<std::byte>> Call(
      const Endpoint& dest, std::span<const std::byte> request) override {
    ++calls_;
    if (calls_ % period_ == 0) {
      if (mode_ == Mode::kError) {
        return Internal("injected transport failure");
      }
      auto raw = inner_->Call(dest, request);
      if (!raw.ok()) return raw;
      raw->resize(raw->size() / 2);
      return raw;
    }
    return inner_->Call(dest, request);
  }

  std::uint32_t server_count() const override {
    return inner_->server_count();
  }

 private:
  Transport* inner_;
  int period_;
  Mode mode_;
  int calls_ = 0;
};

TEST(FaultInjection, TransportErrorsSurfaceAsStatuses) {
  testutil::InProcCluster cluster;
  // Each create/write/close cycle issues ~9 transport calls; a period of
  // 37 makes some cycles fail and others complete untouched.
  FaultyTransport faulty(cluster.transport.get(), 37,
                         FaultyTransport::Mode::kError);
  Client client(&faulty);

  int failures = 0;
  int successes = 0;
  for (int i = 0; i < 40; ++i) {
    auto fd = client.Create("f" + std::to_string(i), Striping{0, 8, 16384});
    if (!fd.ok()) {
      ++failures;
      continue;
    }
    ByteBuffer data(100000);
    Status w = client.Write(*fd, 0, data);
    Status c = client.Close(*fd);
    if (w.ok() && c.ok()) {
      ++successes;
    } else {
      ++failures;
    }
  }
  EXPECT_GT(failures, 0);
  EXPECT_GT(successes, 0);  // off-period operations keep working
}

TEST(FaultInjection, TruncatedResponsesAreProtocolErrors) {
  testutil::InProcCluster cluster;
  FaultyTransport faulty(cluster.transport.get(), 2,
                         FaultyTransport::Mode::kTruncate);
  Client client(&faulty);

  int protocol_errors = 0;
  for (int i = 0; i < 30; ++i) {
    auto fd = client.Open("nope" + std::to_string(i));
    if (!fd.ok() && fd.status().code() == ErrorCode::kProtocol) {
      ++protocol_errors;
    }
  }
  EXPECT_GT(protocol_errors, 0);
}

TEST(FaultInjection, FailedWriteLeavesOtherServersConsistent) {
  // A write that dies after reaching some servers is partial — but the
  // client must report the failure, and a subsequent full rewrite must
  // repair the file.
  testutil::InProcCluster cluster;
  FaultyTransport faulty(cluster.transport.get(), 5,
                         FaultyTransport::Mode::kError);
  Client flaky(&faulty);
  Client reliable = cluster.MakeClient();

  auto fd = reliable.Create("f", Striping{0, 8, 16384});
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(reliable.Close(*fd).ok());

  ByteBuffer data(8 * 16384);
  FillPattern(data, 1, 0);
  // Hammer writes through the flaky transport until one fails.
  bool saw_failure = false;
  for (int i = 0; i < 10 && !saw_failure; ++i) {
    auto ffd = flaky.Open("f");
    if (!ffd.ok()) continue;
    if (!flaky.Write(*ffd, 0, data).ok()) saw_failure = true;
  }
  EXPECT_TRUE(saw_failure);

  // Repair with the reliable client and verify.
  auto rfd = reliable.Open("f");
  ASSERT_TRUE(rfd.ok());
  ASSERT_TRUE(reliable.Write(*rfd, 0, data).ok());
  ByteBuffer out(data.size());
  ASSERT_TRUE(reliable.Read(*rfd, 0, out).ok());
  EXPECT_EQ(out, data);
}

}  // namespace
}  // namespace pvfs
