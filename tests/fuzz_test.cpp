// Robustness: random and mutated bytes thrown at every decoder, and fault
// injection on the transport. Nothing may crash; every failure must
// surface as a Status.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/wire.hpp"
#include "fault/fault.hpp"
#include "fault/fault_transport.hpp"
#include "io/method.hpp"
#include "net/framing.hpp"
#include "pvfs/client.hpp"
#include "pvfs/iod.hpp"
#include "pvfs/manager.hpp"
#include "test_cluster.hpp"
#include "workloads/blockblock.hpp"
#include "workloads/cyclic.hpp"
#include "workloads/strided.hpp"

namespace pvfs {
namespace {

ByteBuffer RandomBytes(SplitMix64& rng, size_t max_len) {
  ByteBuffer out(rng.Uniform(0, max_len));
  for (std::byte& b : out) {
    b = std::byte{static_cast<unsigned char>(rng.Next())};
  }
  return out;
}

TEST(Fuzz, RandomBytesIntoDaemonsNeverCrash) {
  Manager manager(8);
  IoDaemon iod(0);
  SplitMix64 rng(42);
  for (int i = 0; i < 3000; ++i) {
    ByteBuffer junk = RandomBytes(rng, 300);
    auto mresp = DecodeResponse(manager.HandleMessage(junk));
    ASSERT_TRUE(mresp.ok());  // envelope always well-formed
    auto iresp = DecodeResponse(iod.HandleMessage(junk));
    ASSERT_TRUE(iresp.ok());
  }
}

TEST(Fuzz, TruncatedValidMessagesFailCleanly) {
  Manager manager(8);
  IoDaemon iod(0);
  IoRequest io;
  io.handle = 1;
  io.striping = Striping{0, 8, 16384};
  io.regions = {{0, 100}, {300, 100}};
  ByteBuffer full = io.Encode();
  for (size_t cut = 0; cut < full.size(); ++cut) {
    ByteBuffer trunc(full.begin(),
                     full.begin() + static_cast<std::ptrdiff_t>(cut));
    auto resp = DecodeResponse(iod.HandleMessage(trunc));
    ASSERT_TRUE(resp.ok());
    EXPECT_FALSE(resp->status.ok()) << "cut at " << cut;
  }
}

TEST(Fuzz, MutatedCreateRequestsEitherFailOrApplyValidStriping) {
  Manager manager(8);
  CreateRequest req{"victim", Striping{0, 8, 16384}};
  ByteBuffer base = req.Encode();
  SplitMix64 rng(7);
  for (int i = 0; i < 2000; ++i) {
    ByteBuffer mutated = base;
    size_t at = rng.Uniform(0, mutated.size() - 1);
    mutated[at] = std::byte{static_cast<unsigned char>(rng.Next())};
    auto resp = DecodeResponse(manager.HandleMessage(mutated));
    ASSERT_TRUE(resp.ok());
    // Either rejected, or it created a file whose striping passed the
    // manager's own validation; surviving all 2000 mutations is the test.
  }
}

TEST(Fuzz, ResponseDecoderHandlesGarbage) {
  SplitMix64 rng(9);
  for (int i = 0; i < 2000; ++i) {
    ByteBuffer junk = RandomBytes(rng, 200);
    auto resp = DecodeResponse(junk);      // may fail, must not crash
    auto meta = MetadataResponse::Decode(junk);
    auto io = IoResponse::Decode(junk);
    (void)resp;
    (void)meta;
    (void)io;
  }
  SUCCEED();
}

TEST(Fuzz, MutatedDistributionSpecsEitherFailOrDecodeValid) {
  // Layout decoder fuzz: start from a valid tagged frame for each
  // non-simple kind, flip one byte at a time, and require that every
  // mutation either fails cleanly or yields a spec that passes the same
  // validation the manager applies at create time.
  const CreateOptions bases[] = {
      {Striping{0, 8, 16384}, DistributionSpec::TwoD(2, 4)},
      {Striping{0, 8, 16384}, DistributionSpec::Block(1 << 20)},
      {Striping{0, 8, 16384}, DistributionSpec::GroupCyclic(8)},
  };
  SplitMix64 rng(31);
  for (const CreateOptions& base : bases) {
    WireWriter w;
    EncodeDistributionSpec(w, base.striping, base.dist);
    ByteBuffer frame = std::move(w).Take();
    for (int i = 0; i < 2000; ++i) {
      ByteBuffer mutated = frame;
      size_t at = rng.Uniform(0, mutated.size() - 1);
      mutated[at] = std::byte{static_cast<unsigned char>(rng.Next())};
      WireReader r(mutated);
      auto decoded = DecodeDistributionSpec(r);
      if (decoded.ok()) {
        EXPECT_TRUE(
            ValidateDistributionSpec(decoded->striping, decoded->dist).ok());
      }
    }
  }
}

TEST(Fuzz, RandomBytesIntoDistributionSpecDecoderNeverCrash) {
  SplitMix64 rng(33);
  for (int i = 0; i < 3000; ++i) {
    ByteBuffer junk = RandomBytes(rng, 64);
    WireReader r(junk);
    auto decoded = DecodeDistributionSpec(r);  // may fail, must not crash
    if (decoded.ok()) {
      EXPECT_TRUE(
          ValidateDistributionSpec(decoded->striping, decoded->dist).ok());
    }
  }
}

// ---- Sealed-frame fuzzing ----------------------------------------------------

/// Opens a sealed response and decodes its envelope; the daemons must
/// always answer with a well-formed sealed frame, whatever we threw at
/// them.
DecodedResponse MustOpenResponse(std::span<const std::byte> sealed) {
  auto payload = OpenFrame(sealed);
  EXPECT_TRUE(payload.ok()) << "daemon response failed its own CRC";
  if (!payload.ok()) return {};
  auto resp = DecodeResponse(*payload);
  EXPECT_TRUE(resp.ok());
  return resp.ok() ? *resp : DecodedResponse{};
}

TEST(Fuzz, SealedFrameSingleBitFlipsAlwaysDetected) {
  IoDaemon iod(0);
  Manager manager(8);
  IoRequest io;
  io.handle = 1;
  io.striping = Striping{0, 8, 16384};
  io.regions = {{0, 100}, {300, 100}};
  ByteBuffer sealed = SealFrame(io.Encode());

  // A single flipped bit can never cancel out in CRC32C: every mutation
  // must come back as a typed kCorruption rejection from both daemons.
  for (size_t bit = 0; bit < sealed.size() * 8; ++bit) {
    ByteBuffer mutated = sealed;
    mutated[bit / 8] ^= std::byte{static_cast<unsigned char>(1u << (bit % 8))};
    DecodedResponse from_iod = MustOpenResponse(iod.HandleSealedMessage(mutated));
    EXPECT_EQ(from_iod.status.code(), ErrorCode::kCorruption) << "bit " << bit;
    DecodedResponse from_mgr =
        MustOpenResponse(manager.HandleSealedMessage(mutated));
    EXPECT_EQ(from_mgr.status.code(), ErrorCode::kCorruption) << "bit " << bit;
  }
}

TEST(Fuzz, SealedFrameTruncationsAlwaysDetected) {
  IoDaemon iod(0);
  IoRequest io;
  io.handle = 1;
  io.striping = Striping{0, 8, 16384};
  io.regions = {{0, 100}};
  ByteBuffer sealed = SealFrame(io.Encode());

  for (size_t cut = 0; cut < sealed.size(); ++cut) {
    ByteBuffer trunc(sealed.begin(),
                     sealed.begin() + static_cast<std::ptrdiff_t>(cut));
    DecodedResponse resp = MustOpenResponse(iod.HandleSealedMessage(trunc));
    EXPECT_EQ(resp.status.code(), ErrorCode::kCorruption) << "cut at " << cut;
  }
}

TEST(Fuzz, RandomBytesIntoSealedHandlersNeverCrash) {
  Manager manager(8);
  IoDaemon iod(0);
  SplitMix64 rng(43);
  for (int i = 0; i < 3000; ++i) {
    ByteBuffer junk = RandomBytes(rng, 300);
    // Whatever arrives, the daemons answer with a sealed, decodable
    // envelope; random bytes essentially never carry a valid CRC trailer,
    // but if one did, the payload would flow into the (already fuzzed)
    // unsealed handler — either way no crash and a well-formed reply.
    (void)MustOpenResponse(manager.HandleSealedMessage(junk));
    (void)MustOpenResponse(iod.HandleSealedMessage(junk));
  }
}

TEST(Fuzz, HostileLengthPrefixesRejectedBeforeAllocation) {
  // A frame whose u32 length prefix claims more bytes than remain must be
  // rejected by WireReader::Bytes before any allocation is attempted.
  WireWriter w;
  w.U32(0xFFFFFFFFu);  // claims 4 GiB of payload; nothing follows
  WireReader r(w.data());
  auto bytes = r.Bytes();
  ASSERT_FALSE(bytes.ok());
  EXPECT_EQ(bytes.status().code(), ErrorCode::kProtocol);

  WireReader r2(w.data());
  auto str = r2.String();
  ASSERT_FALSE(str.ok());
  EXPECT_EQ(str.status().code(), ErrorCode::kProtocol);
}

TEST(Fuzz, HostileRegionCountsRejectedBeforeAllocation) {
  // IoRequest::Decode validates count * 16 against the remaining bytes
  // before reserving; a forged count must fail typed, not OOM.
  WireWriter w;
  w.U64(1);            // handle
  w.U32(0);            // striping.base
  w.U32(8);            // striping.pcount
  w.U64(16384);        // striping.ssize
  w.U32(0);            // server_index
  w.U8(0);             // op = read
  w.U32(0x10000000u);  // 268M regions claimed, zero trailing bytes present
  WireReader r(w.data());
  auto decoded = IoRequest::Decode(r);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), ErrorCode::kProtocol);
}

TEST(Fuzz, ExtremeExtentListsNeverCrashAndWrapsAreTyped) {
  // Region lists with offsets/lengths near 2^64: every call must either
  // succeed or fail with a typed status — never crash, never let an
  // offset+length wraparound slip past validation as a "small" extent.
  testutil::InProcCluster cluster(4);
  Client client = cluster.MakeClient();
  auto fd = client.Create("f", Striping{0, 4, 16384});
  ASSERT_TRUE(fd.ok());
  ByteBuffer buffer(4096);
  SplitMix64 rng(77);
  const std::uint64_t kTop = ~std::uint64_t{0};

  for (int i = 0; i < 2000; ++i) {
    // Bias half the draws into the wraparound neighbourhood.
    auto hostile = [&](bool huge) -> std::uint64_t {
      return huge ? kTop - rng.Uniform(0, 64) : rng.Uniform(0, 1 << 20);
    };
    ExtentList mem{{hostile(rng.Bernoulli(0.5)), rng.Uniform(1, 4096)}};
    ExtentList file{{hostile(rng.Bernoulli(0.5)), rng.Uniform(1, 4096)}};
    (void)client.WriteList(*fd, mem, buffer, file);
    (void)client.ReadList(*fd, mem, buffer, file);
  }

  // A memory extent that wraps the offset space must be rejected even
  // though the wrapped end() lands inside the buffer (the overflow guard
  // in ValidateListArgs, not luck).
  ExtentList wrap_mem{{kTop - 3, 20}};
  ExtentList small_file{{0, 20}};
  EXPECT_EQ(client.WriteList(*fd, wrap_mem, buffer, small_file).code(),
            ErrorCode::kInvalidArgument);
  ExtentList wrap_file{{kTop - 3, 20}};
  ExtentList small_mem{{0, 20}};
  EXPECT_EQ(client.WriteList(*fd, small_mem, buffer, wrap_file).code(),
            ErrorCode::kInvalidArgument);
}

// ---- Frame-reassembly fuzzing ------------------------------------------------

/// A sealed request frame from the wire corpus: the same shape PR 2's
/// sealed-frame fuzzers use, with randomized regions for variety.
ByteBuffer CorpusSealedFrame(SplitMix64& rng) {
  IoRequest io;
  io.handle = rng.Uniform(1, 1000);
  io.striping = Striping{0, 8, 16384};
  std::uint64_t regions = rng.Uniform(1, 4);
  for (std::uint64_t r = 0; r < regions; ++r) {
    io.regions.push_back(
        {rng.Uniform(0, 1 << 16), rng.Uniform(1, 1 << 10)});
  }
  return SealFrameWithId(io.Encode(), rng.Next());
}

TEST(FrameReassemblyFuzz, RandomSplitPointsRoundTripExactly) {
  // A stream of sealed frames delivered in adversarial chunk sizes
  // (including empty and one-byte reads) must reassemble to exactly the
  // original frames, in order, regardless of where the splits land.
  SplitMix64 rng(321);
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<ByteBuffer> frames;
    ByteBuffer stream;
    std::uint64_t count = rng.Uniform(1, 6);
    for (std::uint64_t f = 0; f < count; ++f) {
      frames.push_back(CorpusSealedFrame(rng));
      ByteBuffer framed = net::EncodeFrame(frames.back());
      stream.insert(stream.end(), framed.begin(), framed.end());
    }

    net::FrameDecoder decoder;
    std::vector<ByteBuffer> got;
    size_t at = 0;
    while (at < stream.size()) {
      size_t chunk = rng.Uniform(0, 17);  // 0..17 bytes per "read"
      chunk = std::min(chunk, stream.size() - at);
      ASSERT_TRUE(decoder.Feed({stream.data() + at, chunk}).ok());
      at += chunk;
      while (auto frame = decoder.Next()) got.push_back(std::move(*frame));
    }
    ASSERT_EQ(got.size(), frames.size()) << "iteration " << iter;
    for (size_t f = 0; f < frames.size(); ++f) {
      EXPECT_EQ(got[f], frames[f]) << "iteration " << iter << " frame " << f;
    }
    EXPECT_FALSE(decoder.has_partial()) << "iteration " << iter;
    EXPECT_EQ(decoder.buffered_bytes(), 0u) << "iteration " << iter;
  }
}

TEST(FrameReassemblyFuzz, HostileLengthPrefixesRejectedBeforeAllocation) {
  // Length prefixes above the decoder's limit — by one byte or by 4 GiB —
  // must fail typed at header-completion time, with nothing buffered
  // beyond the four header bytes (no allocation sized by the attacker).
  constexpr std::uint32_t kLimit = 1u << 20;
  SplitMix64 rng(654);
  for (int iter = 0; iter < 2000; ++iter) {
    std::uint32_t claimed = kLimit + 1 +
                            static_cast<std::uint32_t>(
                                rng.Uniform(0, 0xFFFFFFFFu - kLimit - 1));
    unsigned char header[net::kFrameHeaderBytes];
    net::EncodeFrameHeader(claimed, header);
    net::FrameDecoder decoder(kLimit);
    // Deliver the header in random splits; the rejection must fire the
    // moment the fourth byte lands.
    size_t at = 0;
    Status last = Status::Ok();
    while (at < sizeof header) {
      size_t chunk = std::min<size_t>(rng.Uniform(1, 4), sizeof header - at);
      last = decoder.Feed(
          {reinterpret_cast<const std::byte*>(header) + at, chunk});
      at += chunk;
      if (!last.ok()) break;
    }
    ASSERT_FALSE(last.ok()) << "claimed " << claimed;
    EXPECT_EQ(last.code(), ErrorCode::kProtocol);
    EXPECT_TRUE(decoder.failed());
    EXPECT_LE(decoder.buffered_bytes(), net::kFrameHeaderBytes);
    EXPECT_FALSE(decoder.Next().has_value());
  }
}

TEST(FrameReassemblyFuzz, RandomGarbageNeverCrashesAndStaysBounded) {
  // Arbitrary bytes in arbitrary chunks: the decoder either fails typed
  // (oversize prefix) or keeps waiting for an in-range frame — and its
  // buffering never exceeds limit + header no matter what arrives.
  constexpr std::uint32_t kLimit = 1u << 16;
  SplitMix64 rng(987);
  for (int iter = 0; iter < 500; ++iter) {
    net::FrameDecoder decoder(kLimit);
    bool dead = false;
    for (int feed = 0; feed < 20 && !dead; ++feed) {
      ByteBuffer junk = RandomBytes(rng, 400);
      dead = !decoder.Feed(junk).ok();
      while (decoder.Next().has_value()) {
      }
      EXPECT_LE(decoder.buffered_bytes(),
                static_cast<size_t>(kLimit) + net::kFrameHeaderBytes);
    }
  }
}

// ---- Fault injection ----------------------------------------------------------

/// Wraps a transport and fails every `period`-th call with a transport
/// error, or corrupts the response by truncation.
class FaultyTransport final : public Transport {
 public:
  enum class Mode { kError, kTruncate };

  FaultyTransport(Transport* inner, int period, Mode mode)
      : inner_(inner), period_(period), mode_(mode) {}

  Result<std::vector<std::byte>> Call(
      const Endpoint& dest, std::span<const std::byte> request) override {
    ++calls_;
    if (calls_ % period_ == 0) {
      if (mode_ == Mode::kError) {
        return Internal("injected transport failure");
      }
      auto raw = inner_->Call(dest, request);
      if (!raw.ok()) return raw;
      raw->resize(raw->size() / 2);
      return raw;
    }
    return inner_->Call(dest, request);
  }

  std::uint32_t server_count() const override {
    return inner_->server_count();
  }

 private:
  Transport* inner_;
  int period_;
  Mode mode_;
  int calls_ = 0;
};

TEST(FaultInjection, TransportErrorsSurfaceAsStatuses) {
  testutil::InProcCluster cluster;
  // Each create/write/close cycle issues ~9 transport calls; a period of
  // 37 makes some cycles fail and others complete untouched.
  FaultyTransport faulty(cluster.transport.get(), 37,
                         FaultyTransport::Mode::kError);
  Client client(&faulty);

  int failures = 0;
  int successes = 0;
  for (int i = 0; i < 40; ++i) {
    auto fd = client.Create("f" + std::to_string(i), Striping{0, 8, 16384});
    if (!fd.ok()) {
      ++failures;
      continue;
    }
    ByteBuffer data(100000);
    Status w = client.Write(*fd, 0, data);
    Status c = client.Close(*fd);
    if (w.ok() && c.ok()) {
      ++successes;
    } else {
      ++failures;
    }
  }
  EXPECT_GT(failures, 0);
  EXPECT_GT(successes, 0);  // off-period operations keep working
}

TEST(FaultInjection, TruncatedResponsesAreCorruptionErrors) {
  testutil::InProcCluster cluster;
  FaultyTransport faulty(cluster.transport.get(), 2,
                         FaultyTransport::Mode::kTruncate);
  Client client(&faulty);

  // A truncated response frame fails the client's CRC32C trailer check and
  // surfaces as kCorruption (typed and retryable), never a crash or a
  // silently wrong answer.
  int corruption_errors = 0;
  for (int i = 0; i < 30; ++i) {
    auto fd = client.Open("nope" + std::to_string(i));
    if (!fd.ok() && fd.status().code() == ErrorCode::kCorruption) {
      ++corruption_errors;
    }
  }
  EXPECT_GT(corruption_errors, 0);
  EXPECT_GT(client.retry_counters().corruptions, 0u);
}

TEST(FaultInjection, FailedWriteLeavesOtherServersConsistent) {
  // A write that dies after reaching some servers is partial — but the
  // client must report the failure, and a subsequent full rewrite must
  // repair the file.
  testutil::InProcCluster cluster;
  FaultyTransport faulty(cluster.transport.get(), 5,
                         FaultyTransport::Mode::kError);
  Client flaky(&faulty);
  Client reliable = cluster.MakeClient();

  auto fd = reliable.Create("f", Striping{0, 8, 16384});
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(reliable.Close(*fd).ok());

  ByteBuffer data(8 * 16384);
  FillPattern(data, 1, 0);
  // Hammer writes through the flaky transport until one fails.
  bool saw_failure = false;
  for (int i = 0; i < 10 && !saw_failure; ++i) {
    auto ffd = flaky.Open("f");
    if (!ffd.ok()) continue;
    if (!flaky.Write(*ffd, 0, data).ok()) saw_failure = true;
  }
  EXPECT_TRUE(saw_failure);

  // Repair with the reliable client and verify.
  auto rfd = reliable.Open("f");
  ASSERT_TRUE(rfd.ok());
  ASSERT_TRUE(reliable.Write(*rfd, 0, data).ok());
  ByteBuffer out(data.size());
  ASSERT_TRUE(reliable.Read(*rfd, 0, out).ok());
  EXPECT_EQ(out, data);
}

// ---- Fault-schedule fuzzing --------------------------------------------------

/// One random workload pattern drawn from the repertoire in src/workloads/.
io::AccessPattern FuzzPattern(SplitMix64& rng) {
  switch (rng.Uniform(0, 2)) {
    case 0: {
      workloads::CyclicConfig config;
      config.total_bytes = 64 * 1024;
      config.clients = 4;
      config.accesses_per_client = 8 + rng.Uniform(0, 24);
      return workloads::CyclicPattern(
          config, static_cast<Rank>(rng.Uniform(0, config.clients - 1)));
    }
    case 1: {
      workloads::BlockBlockConfig config;
      config.total_bytes = 64 * 1024;  // 256-byte side
      config.clients = 4;
      config.accesses_per_client = 8 + rng.Uniform(0, 24);
      return workloads::BlockBlockPattern(
          config, static_cast<Rank>(rng.Uniform(0, config.clients - 1)));
    }
    default: {
      workloads::NestedStridedConfig config;
      config.base = rng.Uniform(0, 4096);
      config.block_bytes = 64 + rng.Uniform(0, 960);
      config.levels.push_back(
          {4 + rng.Uniform(0, 12), config.block_bytes + rng.Uniform(0, 4096)});
      return workloads::NestedStridedPattern(config);
    }
  }
}

// Random fault schedule x access method x workload, under a fixed
// iteration budget. Invariants: nothing crashes or hangs; an ok result
// implies byte-identical contents versus a fault-free read; a failure is a
// typed, retryable Status (the injector only produces transient faults).
TEST(FaultScheduleFuzz, RandomSeedMethodWorkloadHoldInvariants) {
  constexpr int kIterations = 40;  // budget: ~each combo a few times
  SplitMix64 rng(2026);
  const io::MethodType kAllMethods[] = {io::MethodType::kMultiple,
                                        io::MethodType::kDataSieving,
                                        io::MethodType::kList,
                                        io::MethodType::kHybrid};

  testutil::InProcCluster cluster;
  const ByteCount file_bytes = 256 * 1024;
  ByteBuffer golden(file_bytes);
  FillPattern(golden, 1234, 0);
  {
    Client reliable = cluster.MakeClient();
    auto fd = reliable.Create("f", Striping{0, 8, 16384});
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(reliable.Write(*fd, 0, golden).ok());
    ASSERT_TRUE(reliable.Close(*fd).ok());
  }

  for (int i = 0; i < kIterations; ++i) {
    fault::FaultConfig config;
    config.seed = rng.Next();
    config.drop_rate = 0.35 * rng.UniformDouble();
    config.duplicate_rate = 0.2 * rng.UniformDouble();
    config.disk_read_error_rate = 0.2 * rng.UniformDouble();
    config.crash_rate = 0.02 * rng.UniformDouble();
    config.crash_down_calls = 1 + static_cast<std::uint32_t>(rng.Uniform(0, 3));
    fault::FaultInjector injector(config);
    for (auto& iod : cluster.iods) iod->set_fault_injector(&injector);
    fault::FaultInjectingTransport chaos(cluster.transport.get(), &injector);

    Client::Options options;
    options.retry.max_attempts = 1 + static_cast<std::uint32_t>(rng.Uniform(0, 11));
    options.retry.initial_backoff = std::chrono::microseconds{1};
    options.retry.max_backoff = std::chrono::microseconds{32};
    Client client(&chaos, options);

    io::MethodType type = kAllMethods[rng.Uniform(0, 3)];
    io::AccessPattern pattern = FuzzPattern(rng);
    // Keep the pattern inside the golden image.
    ExtentList clipped;
    for (const Extent& region : pattern.file) {
      if (region.end() <= file_bytes) clipped.push_back(region);
    }
    if (clipped.empty()) continue;
    pattern = io::AccessPattern::ContiguousMemory(std::move(clipped));

    auto fd = client.Open("f");
    if (!fd.ok()) {
      ADD_FAILURE() << "manager is never injected; open failed: "
                    << fd.status().message();
      continue;
    }
    ByteBuffer buffer(pattern.total_bytes());
    auto method = io::MakeMethod(type);
    Status status = method->Read(client, *fd, pattern, buffer);
    if (status.ok()) {
      ByteBuffer expected;
      expected.reserve(pattern.total_bytes());
      for (const Extent& region : pattern.file) {
        expected.insert(
            expected.end(),
            golden.begin() + static_cast<std::ptrdiff_t>(region.offset),
            golden.begin() + static_cast<std::ptrdiff_t>(region.end()));
      }
      EXPECT_EQ(buffer, expected) << "iteration " << i;
    } else {
      EXPECT_TRUE(IsRetryable(status.code()))
          << "iteration " << i << ": " << status.message();
    }
    (void)client.Close(*fd);
    for (auto& iod : cluster.iods) iod->set_fault_injector(nullptr);
  }
}

}  // namespace
}  // namespace pvfs
