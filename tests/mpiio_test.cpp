// Mini-ROMIO MPI-IO layer tests: views, independent typed access, and
// two-phase collective I/O over concurrent ranks.
#include "mpiio/file.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "mpiio/group.hpp"
#include "runtime/spmd.hpp"
#include "runtime/threaded_cluster.hpp"
#include "workloads/cyclic.hpp"

namespace pvfs::mpiio {
namespace {

constexpr Striping kDefault{0, 8, 16384};

// ---- Group primitives --------------------------------------------------------

TEST(Group, AllGatherCollectsInRankOrder) {
  Group group(4);
  std::vector<std::vector<std::uint64_t>> results(4);
  runtime::RunSpmd(4, [&](runtime::SpmdContext& ctx) {
    results[ctx.rank()] = group.AllGather(ctx.rank(), 100 + ctx.rank());
  });
  for (Rank r = 0; r < 4; ++r) {
    EXPECT_EQ(results[r],
              (std::vector<std::uint64_t>{100, 101, 102, 103}));
  }
}

TEST(Group, AllToAllDeliversPersonalizedBlobs) {
  Group group(3);
  std::vector<std::vector<ByteBuffer>> results(3);
  runtime::RunSpmd(3, [&](runtime::SpmdContext& ctx) {
    std::vector<ByteBuffer> outgoing(3);
    for (Rank d = 0; d < 3; ++d) {
      outgoing[d] = ByteBuffer(1 + ctx.rank() * 3 + d,
                               std::byte{static_cast<unsigned char>(
                                   ctx.rank() * 16 + d)});
    }
    results[ctx.rank()] = group.AllToAll(ctx.rank(), std::move(outgoing));
  });
  for (Rank me = 0; me < 3; ++me) {
    for (Rank s = 0; s < 3; ++s) {
      EXPECT_EQ(results[me][s].size(), 1u + s * 3 + me);
      EXPECT_EQ(results[me][s][0],
                std::byte{static_cast<unsigned char>(s * 16 + me)});
    }
  }
}

TEST(Group, AllToAllReusableAcrossRounds) {
  Group group(2);
  runtime::RunSpmd(2, [&](runtime::SpmdContext& ctx) {
    for (int round = 0; round < 5; ++round) {
      std::vector<ByteBuffer> outgoing(2);
      outgoing[1 - ctx.rank()] =
          ByteBuffer(4, std::byte{static_cast<unsigned char>(round)});
      auto in = group.AllToAll(ctx.rank(), std::move(outgoing));
      ASSERT_EQ(in[1 - ctx.rank()].size(), 4u);
      ASSERT_EQ(in[1 - ctx.rank()][0],
                std::byte{static_cast<unsigned char>(round)});
    }
  });
}

// ---- Views --------------------------------------------------------------------

struct SingleRankFile {
  SingleRankFile() : cluster(8), client(&cluster.transport()), group(1) {}

  Result<MpiFile> OpenFile(const std::string& name) {
    return MpiFile::Open(&client, &group, 0, name, kDefault);
  }

  runtime::ThreadedCluster cluster;
  Client client;
  Group group;
};

TEST(MpiFileView, IdentityViewIsPassThrough) {
  SingleRankFile env;
  auto file = env.OpenFile("f");
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->ViewSlice(100, 50), (ExtentList{{100, 50}}));
}

TEST(MpiFileView, VectorViewTilesAndSlices) {
  SingleRankFile env;
  auto file = env.OpenFile("f");
  ASSERT_TRUE(file.ok());
  // Pick the first 8 bytes of every 32-byte group, from displacement 1000.
  ASSERT_TRUE(
      file->SetView(1000, io::Datatype::Resized(io::Datatype::Bytes(8), 0, 32))
          .ok());
  EXPECT_EQ(file->ViewSlice(0, 8), (ExtentList{{1000, 8}}));
  EXPECT_EQ(file->ViewSlice(8, 8), (ExtentList{{1032, 8}}));
  // Mid-tile slice crossing a tile boundary.
  EXPECT_EQ(file->ViewSlice(4, 8), (ExtentList{{1004, 4}, {1032, 4}}));
  // Deep offset: tile 100.
  EXPECT_EQ(file->ViewSlice(800, 4), (ExtentList{{1000 + 100 * 32, 4}}));
}

TEST(MpiFileView, RejectsBadViews) {
  SingleRankFile env;
  auto file = env.OpenFile("f");
  ASSERT_TRUE(file.ok());
  EXPECT_FALSE(
      file->SetView(0, io::Datatype::Resized(io::Datatype::Bytes(0), 0, 8))
          .ok());
}

TEST(MpiFileIndependent, TypedReadWriteRoundTrip) {
  SingleRankFile env;
  auto file = env.OpenFile("f");
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(
      file->SetView(0, io::Datatype::Resized(io::Datatype::Bytes(16), 0, 64))
          .ok());

  ByteBuffer data(512);  // 32 tiles worth of data bytes
  FillPattern(data, 5, 0);
  ASSERT_TRUE(file->WriteAt(0, data).ok());

  ByteBuffer back(512);
  ASSERT_TRUE(file->ReadAt(0, back).ok());
  EXPECT_EQ(back, data);

  // The physical layout honours the view: data byte 16 sits at offset 64.
  ByteBuffer direct(16);
  ASSERT_TRUE(env.client.Read(
      env.client.Open("f").value(), 64, direct).ok());
  EXPECT_TRUE(std::equal(direct.begin(), direct.end(), data.begin() + 16));
}

// ---- Collective two-phase -----------------------------------------------------

class CollectiveParam : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CollectiveParam, CyclicWriteAllThenReadAllRoundTrip) {
  const std::uint32_t ranks = GetParam();
  runtime::ThreadedCluster cluster(8);
  Group group(ranks);
  workloads::CyclicConfig config{1 << 18, ranks, 128};

  // Each rank writes its interleaved share collectively, then reads the
  // next rank's share back collectively.
  runtime::RunSpmd(ranks, [&](runtime::SpmdContext& ctx) {
    Client client(&cluster.transport());
    auto file = MpiFile::Open(&client, &group, ctx.rank(), "shared",
                              kDefault);
    ASSERT_TRUE(file.ok());
    // View: this rank's cyclic slots — block bytes every clients*block.
    ByteCount block = config.BlockBytes();
    auto filetype = io::Datatype::Resized(io::Datatype::Bytes(block), 0,
                                          block * ranks);
    ASSERT_TRUE(file->SetView(ctx.rank() * block, filetype).ok());

    ByteBuffer mine(config.BytesPerClient());
    FillPattern(mine, 700 + ctx.rank(), 0);
    ASSERT_TRUE(file->WriteAtAll(0, mine).ok());

    // Collective read of the neighbour's share through a shifted view.
    Rank peer = (ctx.rank() + 1) % ranks;
    ASSERT_TRUE(file->SetView(peer * block, filetype).ok());
    ByteBuffer theirs(config.BytesPerClient());
    ASSERT_TRUE(file->ReadAtAll(0, theirs).ok());
    EXPECT_FALSE(FindPatternMismatch(theirs, 700 + peer, 0).has_value());

    ASSERT_TRUE(file->Close().ok());
  });
}

INSTANTIATE_TEST_SUITE_P(Ranks, CollectiveParam,
                         ::testing::Values(1u, 2u, 4u, 8u));

TEST(Collective, TwoPhaseWriteUsesFewAggregatorOps) {
  constexpr std::uint32_t kRanks = 4;
  runtime::ThreadedCluster cluster(8);
  Group group(kRanks);
  constexpr ByteCount kBlock = 256;
  constexpr int kBlocksPerRank = 512;

  std::vector<std::uint64_t> aggregator_writes(kRanks);
  std::vector<std::uint64_t> client_messages(kRanks);
  runtime::RunSpmd(kRanks, [&](runtime::SpmdContext& ctx) {
    Client client(&cluster.transport());
    auto file =
        MpiFile::Open(&client, &group, ctx.rank(), "tp", kDefault);
    ASSERT_TRUE(file.ok());
    auto filetype = io::Datatype::Resized(io::Datatype::Bytes(kBlock), 0,
                                          kBlock * kRanks);
    ASSERT_TRUE(file->SetView(ctx.rank() * kBlock, filetype).ok());
    ByteBuffer mine(kBlocksPerRank * kBlock);
    FillPattern(mine, ctx.rank(), 0);
    ASSERT_TRUE(file->WriteAtAll(0, mine).ok());
    aggregator_writes[ctx.rank()] = file->stats().aggregator_writes;
    client_messages[ctx.rank()] = client.stats().messages;
  });

  // The interleaved pattern fully covers the aggregate range, so no
  // aggregator needed a read-modify-write and each did ONE contiguous
  // write (vs 512 list regions each without two-phase).
  for (Rank r = 0; r < kRanks; ++r) {
    EXPECT_EQ(aggregator_writes[r], 1u) << "rank " << r;
    EXPECT_LE(client_messages[r], 10u) << "rank " << r;
  }

  // And the file contents interleave correctly.
  Client reader(&cluster.transport());
  auto fd = reader.Open("tp");
  ByteBuffer image(kRanks * kBlocksPerRank * kBlock);
  ASSERT_TRUE(reader.Read(*fd, 0, image).ok());
  for (Rank r = 0; r < kRanks; ++r) {
    for (int b = 0; b < kBlocksPerRank; ++b) {
      size_t at = (b * kRanks + r) * kBlock;
      for (ByteCount i = 0; i < kBlock; ++i) {
        ASSERT_EQ(image[at + i],
                  PatternByte(r, static_cast<ByteCount>(b) * kBlock + i))
            << "rank " << r << " block " << b;
      }
    }
  }
}

TEST(Collective, PartialCoverageTriggersRmw) {
  // Ranks write only half their slots: aggregators must read-modify-write
  // and must not clobber pre-existing bytes in the holes.
  constexpr std::uint32_t kRanks = 2;
  runtime::ThreadedCluster cluster(4);
  Group group(kRanks);
  constexpr ByteCount kBlock = 128;
  constexpr int kSlots = 64;

  // Pre-fill the file with a known pattern.
  {
    Client setup(&cluster.transport());
    auto fd = setup.Create("rmw", Striping{0, 4, 4096});
    ByteBuffer base(kRanks * kSlots * kBlock);
    FillPattern(base, 999, 0);
    ASSERT_TRUE(setup.Write(*fd, 0, base).ok());
  }

  runtime::RunSpmd(kRanks, [&](runtime::SpmdContext& ctx) {
    Client client(&cluster.transport());
    auto file = MpiFile::Open(&client, &group, ctx.rank(), "rmw");
    ASSERT_TRUE(file.ok());
    // Write to every second of this rank's slots via explicit extents:
    // view = identity; use WriteAtAll on a strided filetype covering only
    // even slots.
    auto filetype = io::Datatype::Resized(io::Datatype::Bytes(kBlock), 0,
                                          2 * kRanks * kBlock);
    ASSERT_TRUE(file->SetView(ctx.rank() * kBlock, filetype).ok());
    ByteBuffer mine((kSlots / 2) * kBlock);
    FillPattern(mine, 50 + ctx.rank(), 0);
    ASSERT_TRUE(file->WriteAtAll(0, mine).ok());
    EXPECT_GT(file->stats().aggregator_reads, 0u);  // RMW happened
  });

  Client reader(&cluster.transport());
  auto fd = reader.Open("rmw");
  ByteBuffer image(kRanks * kSlots * kBlock);
  ASSERT_TRUE(reader.Read(*fd, 0, image).ok());
  for (int slot = 0; slot < static_cast<int>(kRanks) * kSlots; ++slot) {
    Rank owner = slot % kRanks;
    int cycle = slot / kRanks;
    size_t at = static_cast<size_t>(slot) * kBlock;
    if (cycle % 2 == 0) {
      // Written slot: owner's new data (cycle/2-th block of its stream).
      ByteCount stream = static_cast<ByteCount>(cycle / 2) * kBlock;
      for (ByteCount i = 0; i < kBlock; ++i) {
        ASSERT_EQ(image[at + i], PatternByte(50 + owner, stream + i))
            << "slot " << slot;
      }
    } else {
      // Hole: original bytes preserved.
      for (ByteCount i = 0; i < kBlock; ++i) {
        ASSERT_EQ(image[at + i], PatternByte(999, at + i)) << "slot " << slot;
      }
    }
  }
}

TEST(MpiFileView, SliceAgreesWithFlattenOracle) {
  // Property: for random strided filetypes, ViewSlice(offset, len) must
  // equal slicing a brute-force flatten of enough tiles.
  SingleRankFile env;
  auto file = env.OpenFile("f");
  ASSERT_TRUE(file.ok());
  SplitMix64 rng(17);
  for (int round = 0; round < 100; ++round) {
    ByteCount data = rng.Uniform(1, 64);
    ByteCount extent = data + rng.Uniform(0, 64);
    FileOffset disp = rng.Uniform(0, 10000);
    io::Datatype filetype =
        io::Datatype::Resized(io::Datatype::Bytes(data), 0, extent);
    ASSERT_TRUE(file->SetView(disp, filetype).ok());

    ByteCount offset = rng.Uniform(0, 20 * data);
    ByteCount length = rng.Uniform(0, 10 * data);
    ExtentList got = file->ViewSlice(offset, length);

    std::uint64_t tiles = (offset + length) / data + 2;
    ExtentList oracle =
        SliceStream(filetype.Flatten(disp, tiles), offset, length);
    ASSERT_EQ(got, oracle) << "round " << round << " data=" << data
                           << " extent=" << extent << " offset=" << offset
                           << " len=" << length;
  }
}

TEST(Collective, CbNodesRestrictsAggregators) {
  // With cb_nodes = 1 only rank 0 touches the file; everyone else just
  // ships pieces.
  constexpr std::uint32_t kRanks = 4;
  runtime::ThreadedCluster cluster(8);
  Group group(kRanks);
  std::vector<std::uint64_t> agg_ops(kRanks);
  runtime::RunSpmd(kRanks, [&](runtime::SpmdContext& ctx) {
    Client client(&cluster.transport());
    auto file = MpiFile::Open(&client, &group, ctx.rank(), "cb1", kDefault);
    ASSERT_TRUE(file.ok());
    CollectiveHints hints;
    hints.cb_nodes = 1;
    file->set_hints(hints);
    auto filetype = io::Datatype::Resized(io::Datatype::Bytes(128), 0,
                                          128 * kRanks);
    ASSERT_TRUE(file->SetView(ctx.rank() * 128, filetype).ok());
    ByteBuffer mine(128 * 64);
    FillPattern(mine, 300 + ctx.rank(), 0);
    ASSERT_TRUE(file->WriteAtAll(0, mine).ok());
    agg_ops[ctx.rank()] =
        file->stats().aggregator_writes + file->stats().aggregator_reads;

    // Read everything back collectively through the single aggregator.
    ByteBuffer back(mine.size());
    ASSERT_TRUE(file->ReadAtAll(0, back).ok());
    EXPECT_EQ(back, mine);
  });
  EXPECT_GT(agg_ops[0], 0u);
  for (Rank r = 1; r < kRanks; ++r) {
    EXPECT_EQ(agg_ops[r], 0u) << "rank " << r << " should not aggregate";
  }
}

TEST(Collective, DisabledHintFallsBackToListIo) {
  constexpr std::uint32_t kRanks = 2;
  runtime::ThreadedCluster cluster(4);
  Group group(kRanks);
  runtime::RunSpmd(kRanks, [&](runtime::SpmdContext& ctx) {
    Client client(&cluster.transport());
    auto file = MpiFile::Open(&client, &group, ctx.rank(), "nocb",
                              Striping{0, 4, 4096});
    ASSERT_TRUE(file.ok());
    CollectiveHints hints;
    hints.cb_enable = false;
    file->set_hints(hints);
    auto filetype =
        io::Datatype::Resized(io::Datatype::Bytes(64), 0, 128);
    ASSERT_TRUE(file->SetView(ctx.rank() * 64, filetype).ok());
    ByteBuffer mine(64 * 32);
    FillPattern(mine, ctx.rank(), 0);
    ASSERT_TRUE(file->WriteAtAll(0, mine).ok());
    EXPECT_EQ(file->stats().aggregator_writes, 0u);  // no two-phase
    ByteBuffer back(mine.size());
    ASSERT_TRUE(file->ReadAtAll(0, back).ok());
    EXPECT_EQ(back, mine);
  });
}

}  // namespace
}  // namespace pvfs::mpiio
