// TCP socket transport tests: the full client stack over real loopback
// sockets — framing, concurrent clients, reconnection, hostile frames.
#include "net/socket_transport.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "io/method.hpp"
#include "runtime/spmd.hpp"
#include "workloads/tiledviz.hpp"

namespace pvfs::net {
namespace {

constexpr Striping kDefault{0, 8, 16384};

TEST(SocketServer, EchoServiceRoundTrip) {
  auto server = SocketServer::Start(0, [](std::span<const std::byte> req) {
    std::vector<std::byte> out(req.begin(), req.end());
    std::reverse(out.begin(), out.end());
    return out;
  });
  ASSERT_TRUE(server.ok());
  EXPECT_GT((*server)->port(), 0);

  SocketTransport transport({"127.0.0.1", (*server)->port()}, {});
  ByteBuffer msg(1000);
  FillPattern(msg, 1, 0);
  auto resp = transport.Call(Endpoint::ManagerNode(), msg);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->size(), msg.size());
  for (size_t i = 0; i < msg.size(); ++i) {
    ASSERT_EQ((*resp)[i], msg[msg.size() - 1 - i]);
  }
}

TEST(SocketCluster, FullFileSystemOverSockets) {
  auto cluster = SocketCluster::Start(8);
  ASSERT_TRUE(cluster.ok());
  auto transport = (*cluster)->Connect();
  Client client(transport.get());

  auto fd = client.Create("/net/file", kDefault);
  ASSERT_TRUE(fd.ok());
  ByteBuffer data(300000);
  FillPattern(data, 3, 0);
  ASSERT_TRUE(client.Write(*fd, 0, data).ok());

  // List I/O over the wire too.
  ExtentList file{{100, 1000}, {100000, 2000}, {250000, 500}};
  ByteBuffer out(3500);
  ExtentList mem{{0, 3500}};
  ASSERT_TRUE(client.ReadList(*fd, mem, out, file).ok());
  ByteCount pos = 0;
  for (const Extent& e : file) {
    for (ByteCount i = 0; i < e.length; ++i) {
      ASSERT_EQ(out[pos + i], data[e.offset + i]);
    }
    pos += e.length;
  }
  ASSERT_TRUE(client.Close(*fd).ok());
  ASSERT_TRUE(client.Remove("/net/file").ok());
}

TEST(SocketCluster, ConcurrentClientsOverSockets) {
  auto cluster = SocketCluster::Start(4);
  ASSERT_TRUE(cluster.ok());

  runtime::RunSpmd(6, [&](runtime::SpmdContext& ctx) {
    auto transport = (*cluster)->Connect();
    Client client(transport.get());
    std::string name = "/net/f" + std::to_string(ctx.rank());
    auto fd = client.Create(name, Striping{0, 4, 8192});
    ASSERT_TRUE(fd.ok());
    ByteBuffer data(64 * 1024);
    FillPattern(data, ctx.rank(), 0);
    ASSERT_TRUE(client.Write(*fd, 0, data).ok());
    ByteBuffer out(data.size());
    ASSERT_TRUE(client.Read(*fd, 0, out).ok());
    ASSERT_EQ(out, data);
  });
}

TEST(SocketCluster, NoncontigMethodsOverSockets) {
  auto cluster = SocketCluster::Start(8);
  ASSERT_TRUE(cluster.ok());
  auto transport = (*cluster)->Connect();
  Client client(transport.get());

  workloads::TiledVizConfig config;
  auto fd = client.Create("/net/frame", kDefault);
  ASSERT_TRUE(fd.ok());
  ByteBuffer frame(config.FileBytes());
  FillPattern(frame, 9, 0);
  ASSERT_TRUE(client.Write(*fd, 0, frame).ok());

  for (io::MethodType method :
       {io::MethodType::kMultiple, io::MethodType::kList}) {
    auto pattern = workloads::TiledVizPattern(config, 4);
    ByteBuffer tile(config.TileBytes());
    auto io_method = io::MakeMethod(method);
    ASSERT_TRUE(io_method->Read(client, *fd, pattern, tile).ok());
    ByteCount pos = 0;
    for (const Extent& e : pattern.file) {
      for (ByteCount i = 0; i < e.length; ++i) {
        ASSERT_EQ(tile[pos + i], frame[e.offset + i])
            << io::MethodName(method);
      }
      pos += e.length;
    }
  }
}

TEST(SocketTransport, ConnectionFailureIsAnError) {
  // Nothing listens on this ephemeral-range port (we bind and close one
  // to find a free number).
  auto probe = SocketServer::Start(0, [](std::span<const std::byte>) {
    return std::vector<std::byte>{};
  });
  ASSERT_TRUE(probe.ok());
  std::uint16_t dead_port = (*probe)->port();
  probe->reset();

  SocketTransport transport({"127.0.0.1", dead_port}, {});
  ByteBuffer msg(8);
  auto resp = transport.Call(Endpoint::ManagerNode(), msg);
  EXPECT_FALSE(resp.ok());
}

TEST(SocketServer, SurvivesClientsDisconnecting) {
  auto cluster = SocketCluster::Start(2);
  ASSERT_TRUE(cluster.ok());
  for (int round = 0; round < 5; ++round) {
    auto transport = (*cluster)->Connect();
    Client client(transport.get());
    auto fd = client.Create("/net/r" + std::to_string(round),
                            Striping{0, 2, 4096});
    ASSERT_TRUE(fd.ok());
    // transport destructs here: server workers must handle EOF.
  }
  // Cluster still serves new connections.
  auto transport = (*cluster)->Connect();
  Client client(transport.get());
  EXPECT_TRUE(client.Open("/net/r0").ok());
}

}  // namespace
}  // namespace pvfs::net
