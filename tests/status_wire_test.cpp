#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "common/wire.hpp"

namespace pvfs {
namespace {

// ---- Status / Result ------------------------------------------------------

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("no such thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such thing");
}

TEST(Status, EveryCodeHasName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kBusy); ++c) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(c)), "UNKNOWN");
  }
}

TEST(Status, RetryableCodesAreTransientOnly) {
  EXPECT_TRUE(IsRetryable(ErrorCode::kUnavailable));
  EXPECT_TRUE(IsRetryable(ErrorCode::kDeadlineExceeded));
  EXPECT_TRUE(IsRetryable(ErrorCode::kProtocol));
  EXPECT_TRUE(IsRetryable(ErrorCode::kCorruption));
  EXPECT_TRUE(IsRetryable(ErrorCode::kBusy));
  EXPECT_FALSE(IsRetryable(ErrorCode::kOk));
  EXPECT_FALSE(IsRetryable(ErrorCode::kNotFound));
  EXPECT_FALSE(IsRetryable(ErrorCode::kInvalidArgument));
  EXPECT_FALSE(IsRetryable(ErrorCode::kAlreadyExists));
  EXPECT_FALSE(IsRetryable(ErrorCode::kInternal));
  // Lock conflicts come back as kResourceExhausted; they must NOT enter
  // the generic exchange retry loop (the lock path has its own backoff).
  EXPECT_FALSE(IsRetryable(ErrorCode::kResourceExhausted));
}

TEST(Status, BusyFactoryAndName) {
  Status s = Busy("queue full");
  EXPECT_EQ(s.code(), ErrorCode::kBusy);
  EXPECT_EQ(s.ToString(), "BUSY: queue full");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = InvalidArgument("bad");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Result<int> Halve(int x) {
  if (x % 2 != 0) return InvalidArgument("odd");
  return x / 2;
}
Result<int> Quarter(int x) {
  PVFS_ASSIGN_OR_RETURN(int half, Halve(x));
  PVFS_ASSIGN_OR_RETURN(int quarter, Halve(half));
  return quarter;
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(Quarter(8).value(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // fails at the second halving
  EXPECT_FALSE(Quarter(3).ok());
}

// ---- Wire -------------------------------------------------------------------

TEST(Wire, ScalarRoundTrip) {
  WireWriter w;
  w.U8(0xAB);
  w.U16(0x1234);
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFull);
  w.I64(-42);

  WireReader r(w.data());
  EXPECT_EQ(r.U8().value(), 0xAB);
  EXPECT_EQ(r.U16().value(), 0x1234);
  EXPECT_EQ(r.U32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.I64().value(), -42);
  EXPECT_TRUE(r.AtEnd());
}

TEST(Wire, LittleEndianLayout) {
  WireWriter w;
  w.U32(0x01020304);
  auto data = w.data();
  EXPECT_EQ(std::to_integer<int>(data[0]), 0x04);
  EXPECT_EQ(std::to_integer<int>(data[3]), 0x01);
}

TEST(Wire, StringAndBytesRoundTrip) {
  WireWriter w;
  w.String("hello");
  w.String("");
  WireReader r(w.data());
  EXPECT_EQ(r.String().value(), "hello");
  EXPECT_EQ(r.String().value(), "");
}

TEST(Wire, TruncatedReadsFail) {
  WireWriter w;
  w.U16(7);
  WireReader r(w.data());
  EXPECT_FALSE(r.U32().ok());  // only two bytes available

  WireWriter w2;
  w2.U32(100);  // claims 100 bytes follow
  WireReader r2(w2.data());
  auto bytes = r2.Bytes();
  EXPECT_FALSE(bytes.ok());
  EXPECT_EQ(bytes.status().code(), ErrorCode::kProtocol);
}

TEST(Wire, RawConsumesExactly) {
  WireWriter w;
  w.U8(1);
  w.U8(2);
  w.U8(3);
  WireReader r(w.data());
  auto raw = r.Raw(2);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->size(), 2u);
  EXPECT_EQ(r.remaining(), 1u);
}

// ---- Pattern bytes -----------------------------------------------------------

TEST(Bytes, PatternIsDeterministicAndSeedSensitive) {
  EXPECT_EQ(PatternByte(1, 100), PatternByte(1, 100));
  // Different positions/seeds should differ for at least some samples.
  int diff = 0;
  for (FileOffset i = 0; i < 64; ++i) {
    if (PatternByte(1, i) != PatternByte(2, i)) ++diff;
  }
  EXPECT_GT(diff, 32);
}

TEST(Bytes, FillAndVerify) {
  ByteBuffer buf(256);
  FillPattern(buf, 7, 1000);
  EXPECT_FALSE(FindPatternMismatch(buf, 7, 1000).has_value());
  buf[100] = ~buf[100];
  auto mismatch = FindPatternMismatch(buf, 7, 1000);
  ASSERT_TRUE(mismatch.has_value());
  EXPECT_EQ(*mismatch, 100u);
}

TEST(Bytes, GatherScatterInverse) {
  ByteBuffer src(128);
  FillPattern(src, 3, 0);
  ExtentList extents{{0, 16}, {32, 8}, {100, 28}};
  ByteBuffer packed = GatherExtents(src, extents);
  EXPECT_EQ(packed.size(), 52u);

  ByteBuffer dst(128, std::byte{0});
  ScatterExtents(packed, extents, dst);
  for (const Extent& e : extents) {
    for (FileOffset i = e.offset; i < e.end(); ++i) {
      EXPECT_EQ(dst[i], src[i]) << "at " << i;
    }
  }
  // Untouched bytes stay zero.
  EXPECT_EQ(dst[20], std::byte{0});
}

// ---- RNG ---------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  SplitMix64 a(99);
  SplitMix64 b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, UniformStaysInRange) {
  SplitMix64 rng(1);
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.Uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  SplitMix64 rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace pvfs
