#include <gtest/gtest.h>

#include "models/disk.hpp"
#include "models/ethernet.hpp"
#include "models/page_cache.hpp"

namespace pvfs::models {
namespace {

// ---- DiskModel -------------------------------------------------------------

TEST(DiskModel, SequentialAccessPaysOnlyTransfer) {
  DiskModel disk;
  SimTimeNs first = disk.Access(0, 64 * 1024, false);
  SimTimeNs second = disk.Access(64 * 1024, 64 * 1024, false);
  // First access seeks from position 0 head... head starts at 0, so the
  // first access is "sequential" too; both should be pure transfer.
  double transfer_s = 64.0 * 1024 / (disk.params().media_transfer_mbps * 1e6);
  EXPECT_EQ(first, SecondsToNs(transfer_s));
  EXPECT_EQ(second, SecondsToNs(transfer_s));
  EXPECT_EQ(disk.sequential_hits(), 2u);
  EXPECT_EQ(disk.seeks(), 0u);
}

TEST(DiskModel, RandomAccessPaysPositioning) {
  DiskModel disk;
  disk.Access(0, 4096, false);
  SimTimeNs far = disk.Access(4ull * 1000 * 1000 * 1000, 4096, false);
  // Long seek + half rotation ~ 10+ ms.
  EXPECT_GT(far, 8 * kNsPerMs);
  EXPECT_LT(far, 25 * kNsPerMs);
  EXPECT_EQ(disk.seeks(), 1u);
}

TEST(DiskModel, NearSeekCheaperThanFarSeek) {
  DiskModel a;
  DiskModel b;
  a.Access(0, 4096, false);
  b.Access(0, 4096, false);
  SimTimeNs near_cost = a.Access(1 * kMiB, 4096, false);
  SimTimeNs far_cost = b.Access(8ull * 1000 * 1000 * 1000, 4096, false);
  EXPECT_LT(near_cost, far_cost);
}

TEST(DiskModel, PositioningCostZeroWhenSequential) {
  DiskModel disk;
  disk.Access(100, 100, true);
  EXPECT_EQ(disk.PositioningCost(200), 0u);
  EXPECT_GT(disk.PositioningCost(10 * kMiB), 0u);
  EXPECT_EQ(disk.head_position(), 200u);
}

TEST(DiskModel, TransferScalesWithLength) {
  DiskModel disk;
  SimTimeNs small = disk.Access(0, 1 * kMiB, false);
  DiskModel disk2;
  SimTimeNs large = disk2.Access(0, 4 * kMiB, false);
  EXPECT_NEAR(static_cast<double>(large) / small, 4.0, 0.01);
}

// ---- PageCache -------------------------------------------------------------

CacheParams SmallCache() {
  CacheParams p;
  p.capacity_bytes = 64 * 4096;  // 64 pages
  p.readahead_pages = 4;
  return p;
}

TEST(PageCache, FirstReadMissesThenHits) {
  DiskModel disk;
  PageCache cache(SmallCache(), &disk);
  SimTimeNs miss_time = cache.Read(0, 4096);
  EXPECT_EQ(cache.stats().page_misses, 1u);
  SimTimeNs hit_time = cache.Read(0, 4096);
  EXPECT_EQ(cache.stats().page_hits, 1u);
  EXPECT_LT(hit_time, miss_time);
}

TEST(PageCache, SequentialReadTriggersReadahead) {
  DiskModel disk;
  PageCache cache(SmallCache(), &disk);
  cache.Read(0, 4096);
  EXPECT_EQ(cache.stats().readahead_pages, 0u);  // first read: no stream yet
  cache.Read(4096, 4096);  // continues the stream
  EXPECT_EQ(cache.stats().readahead_pages, 4u);
  // The read-ahead pages are now resident: the next reads are hits.
  SimTimeNs t = cache.Read(8192, 4096);
  EXPECT_EQ(cache.stats().page_misses, 2u);
  EXPECT_GT(cache.stats().page_hits, 0u);
  (void)t;
}

TEST(PageCache, WriteBackAbsorbsWritesUntilFlush) {
  DiskModel disk;
  CacheParams params = SmallCache();
  params.dirty_flush_ratio = 0.5;  // flush at 32 dirty pages
  PageCache cache(params, &disk);
  // Aligned writes below the threshold cost only memory time.
  SimTimeNs t = cache.Write(0, 16 * 4096);
  EXPECT_EQ(cache.dirty_pages(), 16u);
  EXPECT_EQ(cache.stats().writeback_pages, 0u);
  EXPECT_LT(t, kNsPerMs);  // no disk involved
  // Crossing the threshold flushes everything.
  cache.Write(16 * 4096, 20 * 4096);
  EXPECT_EQ(cache.dirty_pages(), 0u);
  EXPECT_EQ(cache.stats().threshold_flushes, 1u);
  EXPECT_EQ(cache.stats().writeback_pages, 36u);
}

TEST(PageCache, WriteThroughPaysDiskEveryTime) {
  DiskModel disk;
  CacheParams params = SmallCache();
  params.write_through = true;
  PageCache cache(params, &disk);
  cache.Write(0, 4096);
  SimTimeNs t = cache.Write(1 * kMiB, 4096);
  EXPECT_GT(t, kNsPerMs);  // positioning cost on every scattered write
  EXPECT_EQ(cache.dirty_pages(), 0u);
}

TEST(PageCache, UnalignedWriteReadsEdgePages) {
  DiskModel disk;
  PageCache cache(SmallCache(), &disk);
  cache.Write(100, 50);  // interior of page 0
  EXPECT_EQ(cache.stats().page_misses, 1u);  // page 0 read for RMW
}

TEST(PageCache, EvictionWritesDirtyVictims) {
  DiskModel disk;
  CacheParams params = SmallCache();  // 64-page capacity
  params.dirty_flush_ratio = 2.0;     // never threshold-flush
  params.readahead_pages = 0;
  PageCache cache(params, &disk);
  cache.Write(0, 32 * 4096);  // 32 dirty pages
  // Read 64 more pages -> evictions must write dirty victims back.
  cache.Read(kMiB, 64 * 4096);
  EXPECT_GT(cache.stats().evictions, 0u);
  EXPECT_GT(cache.stats().writeback_pages, 0u);
  EXPECT_LE(cache.resident_pages(), 64u);
}

TEST(PageCache, SyncFlushesAllDirty) {
  DiskModel disk;
  PageCache cache(SmallCache(), &disk);
  cache.Write(0, 8 * 4096);
  EXPECT_EQ(cache.dirty_pages(), 8u);
  SimTimeNs t = cache.Sync();
  EXPECT_GT(t, 0u);
  EXPECT_EQ(cache.dirty_pages(), 0u);
  EXPECT_EQ(cache.Sync(), 0u);  // idempotent
}

TEST(PageCache, FlushCoalescesContiguousRuns) {
  DiskModel disk;
  CacheParams params = SmallCache();
  params.readahead_pages = 0;
  PageCache cache(params, &disk);
  cache.Write(0, 16 * 4096);  // one contiguous dirty run
  std::uint64_t seeks_before = disk.seeks() + disk.sequential_hits();
  cache.Sync();
  // One coalesced disk write for the whole run.
  EXPECT_EQ(disk.seeks() + disk.sequential_hits(), seeks_before + 1);
}

// ---- Ethernet ---------------------------------------------------------------

TEST(Ethernet, FrameCountCeil) {
  EthernetModel net;
  ByteCount payload = net.FramePayload();
  EXPECT_EQ(net.FrameCount(0), 1u);
  EXPECT_EQ(net.FrameCount(1), 1u);
  EXPECT_EQ(net.FrameCount(payload), 1u);
  EXPECT_EQ(net.FrameCount(payload + 1), 2u);
  EXPECT_EQ(net.FrameCount(10 * payload), 10u);
}

TEST(Ethernet, WireTimeMatchesBandwidth) {
  EthernetModel net;
  // 1 MB at 100 Mb/s is ~80 ms plus per-frame overhead (~5%).
  SimTimeNs t = net.WireTime(1000 * 1000);
  EXPECT_GT(t, SecondsToNs(0.080));
  EXPECT_LT(t, SecondsToNs(0.090));
}

TEST(Ethernet, SmallMessagesDominatedByFixedCosts) {
  EthernetModel net;
  // A 64-byte request occupies the wire for ~10-15 us...
  SimTimeNs wire = net.WireTime(64);
  EXPECT_LT(wire, 20 * kNsPerUs);
  // ...but the software stack costs more (the list-I/O motivation).
  EXPECT_GT(net.MessageLatency(), wire);
}

TEST(Ethernet, ListRequestFitsOneFrame) {
  // The paper's design constraint (§3.3): request structure + 64
  // offset/length pairs must fit a 1500-byte Ethernet frame.
  EthernetModel net;
  EXPECT_LE(64 * 16 + 128, static_cast<long>(net.params().mtu));
}

TEST(ServerCpu, CostDecomposition) {
  ServerCpuModel cpu;
  SimTimeNs base = cpu.RequestCost(0, 0);
  EXPECT_EQ(base, cpu.params().per_request_ns);
  SimTimeNs with_regions = cpu.RequestCost(64, 0);
  EXPECT_EQ(with_regions, base + 64 * cpu.params().per_region_ns);
  SimTimeNs with_bytes = cpu.RequestCost(0, 1000 * 1000);
  EXPECT_GT(with_bytes, base);
}

}  // namespace
}  // namespace pvfs::models
