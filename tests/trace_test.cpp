// Trace serialization, parsing, builders, replay and sim-adapter tests.
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "runtime/threaded_cluster.hpp"
#include "simcluster/workload_streams.hpp"

namespace pvfs::trace {
namespace {

TEST(TraceFormat, SerializeParseRoundTrip) {
  Trace trace;
  trace.ranks = 3;
  trace.ops.push_back({0, IoOp::kWrite, {{0, 100}, {500, 50}}});
  trace.ops.push_back({2, IoOp::kRead, {{16384, 4096}}});
  trace.ops.push_back({1, IoOp::kWrite, {{1, 1}}});

  auto parsed = Parse(Serialize(trace));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, trace);
}

TEST(TraceFormat, ParsesCommentsAndWhitespace) {
  auto parsed = Parse(
      "# a trace\n"
      "ranks 2\n"
      "\n"
      "  0 R 0:10,20:10   # trailing comment\n"
      "1 W 100:5\r\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->ranks, 2u);
  ASSERT_EQ(parsed->ops.size(), 2u);
  EXPECT_EQ(parsed->ops[0].regions,
            (ExtentList{{0, 10}, {20, 10}}));
  EXPECT_EQ(parsed->ops[1].op, IoOp::kWrite);
}

TEST(TraceFormat, RejectsMalformedInput) {
  EXPECT_FALSE(Parse("").ok());                       // no header
  EXPECT_FALSE(Parse("ranks 0\n").ok());              // zero ranks
  EXPECT_FALSE(Parse("0 R 0:10\nranks 2\n").ok());    // header not first
  EXPECT_FALSE(Parse("ranks 2\n5 R 0:10\n").ok());    // rank out of range
  EXPECT_FALSE(Parse("ranks 2\n0 X 0:10\n").ok());    // bad op
  EXPECT_FALSE(Parse("ranks 2\n0 R 0-10\n").ok());    // bad region
  EXPECT_FALSE(Parse("ranks 2\n0 R abc:10\n").ok());  // bad integer
}

TEST(TraceBuilders, CyclicTraceMatchesWorkload) {
  Trace trace = CyclicTrace(1 << 20, 4, 64, IoOp::kWrite);
  EXPECT_EQ(trace.ranks, 4u);
  EXPECT_EQ(trace.ops.size(), 4u);
  EXPECT_EQ(trace.TotalBytes(), 1u << 20);
  workloads::CyclicConfig config{1 << 20, 4, 64};
  EXPECT_EQ(trace.ops[2].regions,
            workloads::CyclicPattern(config, 2).file);
}

TEST(TraceBuilders, TiledTraceHas768RowsPerRank) {
  Trace trace = TiledVizTrace();
  EXPECT_EQ(trace.ranks, 6u);
  for (const TraceOp& op : trace.ops) {
    EXPECT_EQ(op.regions.size(), 768u);
    EXPECT_EQ(op.op, IoOp::kRead);
  }
}

TEST(TraceReplay, WritesThenReadsThroughCluster) {
  runtime::ThreadedCluster cluster(8);
  Trace writes = CyclicTrace(1 << 18, 4, 32, IoOp::kWrite);

  ReplayOptions options;
  options.method = io::MethodType::kList;
  auto result = Replay(cluster.transport(), writes, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->bytes_written, 1u << 18);
  EXPECT_GT(result->fs_requests, 0u);

  // Replay the matching read trace against the same (existing) file.
  Trace reads = CyclicTrace(1 << 18, 4, 32, IoOp::kRead);
  auto read_result = Replay(cluster.transport(), reads, options);
  ASSERT_TRUE(read_result.ok());
  EXPECT_EQ(read_result->bytes_read, 1u << 18);
}

TEST(TraceReplay, AllMethodsHandleTheSameTrace) {
  for (io::MethodType method :
       {io::MethodType::kMultiple, io::MethodType::kDataSieving,
        io::MethodType::kList, io::MethodType::kHybrid}) {
    runtime::ThreadedCluster cluster(8);
    Trace trace = CyclicTrace(1 << 16, 2, 16, IoOp::kWrite);
    ReplayOptions options;
    options.method = method;
    auto result = Replay(cluster.transport(), trace, options);
    ASSERT_TRUE(result.ok()) << io::MethodName(method);
    // Sieving/hybrid RMW writes back gap bytes too, so >= the trace total.
    EXPECT_GE(result->bytes_written, 1u << 16) << io::MethodName(method);
  }
}

TEST(TraceSim, WorkloadAdapterFiltersDirection) {
  Trace trace;
  trace.ranks = 2;
  trace.ops.push_back({0, IoOp::kWrite, {{0, 100}}});
  trace.ops.push_back({0, IoOp::kRead, {{200, 100}}});
  trace.ops.push_back({1, IoOp::kRead, {{400, 100}, {600, 100}}});

  simcluster::SimWorkload reads = ToSimWorkload(trace, IoOp::kRead);
  auto r0 = reads.file_regions(0);
  EXPECT_EQ(r0->TotalBytes(), 100u);
  auto r1 = reads.file_regions(1);
  EXPECT_EQ(r1->TotalBytes(), 200u);

  simcluster::SimWorkload writes = ToSimWorkload(trace, IoOp::kWrite);
  EXPECT_EQ(writes.file_regions(0)->TotalBytes(), 100u);
  EXPECT_EQ(writes.file_regions(1)->TotalBytes(), 0u);
}

TEST(TraceSim, SimulatedTraceRuns) {
  Trace trace = CyclicTrace(8 * kMiB, 4, 1000, IoOp::kRead);
  auto workload = ToSimWorkload(trace, IoOp::kRead);
  auto run = simcluster::RunSimWorkload(simcluster::ChibaCityConfig(4),
                                        io::MethodType::kList, IoOp::kRead,
                                        workload);
  EXPECT_GT(run.io_seconds, 0.0);
  EXPECT_EQ(run.counters.fs_requests, 4u * ((1000 + 63) / 64));
}

}  // namespace
}  // namespace pvfs::trace
