#include "pvfs/client.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "test_cluster.hpp"

namespace pvfs {
namespace {

using testutil::InProcCluster;

constexpr Striping kDefault{0, 8, 16384};

TEST(ChunkRegions, SplitsAtLimit) {
  ExtentList regions(130, Extent{0, 8});
  auto chunks = ChunkRegions(regions, 64);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].size(), 64u);
  EXPECT_EQ(chunks[1].size(), 64u);
  EXPECT_EQ(chunks[2].size(), 2u);
}

TEST(ChunkRegions, DropsEmptyRegions) {
  ExtentList regions{{0, 8}, {10, 0}, {20, 8}};
  auto chunks = ChunkRegions(regions, 64);
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].size(), 2u);
}

TEST(ChunkRegions, EmptyInput) {
  EXPECT_TRUE(ChunkRegions(ExtentList{}, 64).empty());
}

TEST(Client, CreateOpenCloseLifecycle) {
  InProcCluster cluster;
  Client client = cluster.MakeClient();

  auto fd = client.Create("f", kDefault);
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(client.Close(*fd).ok());

  auto fd2 = client.Open("f");
  ASSERT_TRUE(fd2.ok());
  auto meta = client.DescribeFd(*fd2);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->striping, kDefault);
  EXPECT_TRUE(client.Close(*fd2).ok());

  EXPECT_FALSE(client.Open("missing").ok());
  EXPECT_FALSE(client.Close(1234).ok());
}

TEST(Client, ContiguousWriteReadRoundTrip) {
  InProcCluster cluster;
  Client client = cluster.MakeClient();
  auto fd = client.Create("f", kDefault);
  ASSERT_TRUE(fd.ok());

  // Spans several stripes and servers.
  ByteBuffer data(5 * 16384 + 777);
  FillPattern(data, 42, 0);
  ASSERT_TRUE(client.Write(*fd, 1000, data).ok());

  ByteBuffer out(data.size());
  ASSERT_TRUE(client.Read(*fd, 1000, out).ok());
  EXPECT_EQ(out, data);
}

TEST(Client, StripingPlacesBytesOnExpectedServers) {
  InProcCluster cluster;
  Client client = cluster.MakeClient();
  auto fd = client.Create("f", kDefault);
  ASSERT_TRUE(fd.ok());
  auto meta = client.DescribeFd(*fd);

  // Write exactly 3 stripes: they must land on iods 0, 1, 2.
  ByteBuffer data(3 * 16384);
  FillPattern(data, 7, 0);
  ASSERT_TRUE(client.Write(*fd, 0, data).ok());
  for (ServerId s = 0; s < 3; ++s) {
    EXPECT_EQ(cluster.iods[s]->store().SizeOf(meta->handle), 16384u)
        << "server " << s;
  }
  for (ServerId s = 3; s < 8; ++s) {
    EXPECT_EQ(cluster.iods[s]->store().SizeOf(meta->handle), 0u);
  }
}

TEST(Client, NonZeroBaseMapsToLaterServers) {
  InProcCluster cluster;
  Client client = cluster.MakeClient();
  auto fd = client.Create("f", Striping{5, 2, 16384});
  ASSERT_TRUE(fd.ok());
  auto meta = client.DescribeFd(*fd);

  ByteBuffer data(2 * 16384);
  FillPattern(data, 9, 0);
  ASSERT_TRUE(client.Write(*fd, 0, data).ok());
  // Relative servers 0,1 -> global 5,6.
  EXPECT_EQ(cluster.iods[5]->store().SizeOf(meta->handle), 16384u);
  EXPECT_EQ(cluster.iods[6]->store().SizeOf(meta->handle), 16384u);
  EXPECT_EQ(cluster.iods[0]->store().SizeOf(meta->handle), 0u);

  ByteBuffer out(data.size());
  ASSERT_TRUE(client.Read(*fd, 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST(Client, ListWriteReadRoundTrip) {
  InProcCluster cluster;
  Client client = cluster.MakeClient();
  auto fd = client.Create("f", kDefault);
  ASSERT_TRUE(fd.ok());

  // Noncontiguous in memory AND file.
  ByteBuffer buffer(10000);
  FillPattern(buffer, 3, 0);
  ExtentList mem{{0, 1000}, {2000, 1000}, {5000, 500}};
  ExtentList file{{100, 300}, {20000, 1200}, {100000, 1000}};
  ASSERT_TRUE(client.WriteList(*fd, mem, buffer, file).ok());

  ByteBuffer out(10000, std::byte{0});
  ASSERT_TRUE(client.ReadList(*fd, mem, out, file).ok());
  for (const Extent& m : mem) {
    for (FileOffset i = m.offset; i < m.end(); ++i) {
      ASSERT_EQ(out[i], buffer[i]) << "at " << i;
    }
  }
}

TEST(Client, ListIoChunksAtRegionLimit) {
  InProcCluster cluster;
  Client client = cluster.MakeClient();
  auto fd = client.Create("f", kDefault);
  ASSERT_TRUE(fd.ok());
  client.ResetStats();

  // 130 small regions, all on server 0 (within the first stripe).
  ExtentList file;
  for (int i = 0; i < 130; ++i) {
    file.push_back(Extent{static_cast<FileOffset>(i) * 100, 50});
  }
  ByteBuffer buffer(TotalBytes(file));
  FillPattern(buffer, 5, 0);
  ExtentList mem{{0, buffer.size()}};
  ASSERT_TRUE(client.WriteList(*fd, mem, buffer, file).ok());

  // ceil(130/64) = 3 fs requests (the paper's request-count metric).
  EXPECT_EQ(client.stats().fs_requests, 3u);
  EXPECT_EQ(client.stats().operations, 1u);
  EXPECT_EQ(client.stats().bytes_written, buffer.size());
}

TEST(Client, ReadListOfSparseFileReturnsZeros) {
  InProcCluster cluster;
  Client client = cluster.MakeClient();
  auto fd = client.Create("f", kDefault);
  ASSERT_TRUE(fd.ok());
  ByteBuffer out(100, std::byte{0xEE});
  ExtentList mem{{0, 100}};
  ExtentList file{{1 << 20, 100}};
  ASSERT_TRUE(client.ReadList(*fd, mem, out, file).ok());
  for (std::byte b : out) EXPECT_EQ(b, std::byte{0});
}

TEST(Client, ValidationRejectsMismatchedTotals) {
  InProcCluster cluster;
  Client client = cluster.MakeClient();
  auto fd = client.Create("f", kDefault);
  ByteBuffer buffer(100);
  ExtentList mem{{0, 50}};
  ExtentList file{{0, 60}};
  EXPECT_EQ(client.ReadList(*fd, mem, buffer, file).code(),
            ErrorCode::kInvalidArgument);
}

TEST(Client, ValidationRejectsMemoryOutsideBuffer) {
  InProcCluster cluster;
  Client client = cluster.MakeClient();
  auto fd = client.Create("f", kDefault);
  ByteBuffer buffer(100);
  ExtentList mem{{90, 20}};
  ExtentList file{{0, 20}};
  EXPECT_EQ(client.WriteList(*fd, mem, buffer, file).code(),
            ErrorCode::kInvalidArgument);
}

TEST(Client, ValidationRejectsWrappingMemoryExtent) {
  InProcCluster cluster;
  Client client = cluster.MakeClient();
  auto fd = client.Create("f", kDefault);
  ByteBuffer buffer(100);
  // offset + length wraps the 64-bit offset space, so m.end() is small
  // and slips past the plain bounds check — it must be rejected before
  // anything indexes the caller's buffer.
  ExtentList mem{{~std::uint64_t{0} - 3, 20}};
  ExtentList file{{0, 20}};
  EXPECT_EQ(client.WriteList(*fd, mem, buffer, file).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(client.ReadList(*fd, mem, buffer, file).code(),
            ErrorCode::kInvalidArgument);
  // The same guard for file regions still holds.
  ExtentList bad_file{{~std::uint64_t{0} - 3, 20}};
  ExtentList ok_mem{{0, 20}};
  EXPECT_EQ(client.WriteList(*fd, ok_mem, buffer, bad_file).code(),
            ErrorCode::kInvalidArgument);
}

TEST(Client, OperationsOnBadFdFail) {
  InProcCluster cluster;
  Client client = cluster.MakeClient();
  ByteBuffer buffer(10);
  EXPECT_EQ(client.Read(42, 0, buffer).code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(client.Write(42, 0, buffer).code(),
            ErrorCode::kFailedPrecondition);
}

TEST(Client, CloseFlushesSizeToManager) {
  InProcCluster cluster;
  Client client = cluster.MakeClient();
  auto fd = client.Create("f", kDefault);
  ByteBuffer data(1000);
  ASSERT_TRUE(client.Write(*fd, 5000, data).ok());
  ASSERT_TRUE(client.Close(*fd).ok());

  auto fd2 = client.Open("f");
  auto meta = client.Stat(*fd2);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->size, 6000u);
}

TEST(Client, RemoveDropsDataOnAllServers) {
  InProcCluster cluster;
  Client client = cluster.MakeClient();
  auto fd = client.Create("f", kDefault);
  auto meta = client.DescribeFd(*fd);
  ByteBuffer data(8 * 16384);
  ASSERT_TRUE(client.Write(*fd, 0, data).ok());
  ASSERT_TRUE(client.Close(*fd).ok());

  ASSERT_TRUE(client.Remove("f").ok());
  EXPECT_FALSE(client.Open("f").ok());
  for (auto& iod : cluster.iods) {
    EXPECT_FALSE(iod->store().Contains(meta->handle));
  }
}

TEST(Client, SmallerListLimitMeansMoreRequests) {
  InProcCluster cluster(8, /*max_list_regions=*/8);
  Client client = cluster.MakeClient(/*max_list_regions=*/8);
  auto fd = client.Create("f", kDefault);
  client.ResetStats();

  ExtentList file;
  for (int i = 0; i < 64; ++i) {
    file.push_back(Extent{static_cast<FileOffset>(i) * 1000, 10});
  }
  ByteBuffer buffer(TotalBytes(file));
  ExtentList mem{{0, buffer.size()}};
  ASSERT_TRUE(client.WriteList(*fd, mem, buffer, file).ok());
  EXPECT_EQ(client.stats().fs_requests, 8u);  // 64 / 8
}

TEST(Client, RandomListPatternsMatchOracle) {
  // Property test: random noncontiguous writes then reads reproduce the
  // oracle file image for arbitrary patterns and stripe interactions.
  InProcCluster cluster;
  Client client = cluster.MakeClient();
  SplitMix64 rng(2026);

  for (int round = 0; round < 10; ++round) {
    std::string name = "f" + std::to_string(round);
    Striping striping{static_cast<ServerId>(rng.Uniform(0, 7)),
                      static_cast<std::uint32_t>(rng.Uniform(1, 8)),
                      rng.Uniform(1, 3) * 4096};
    auto fd = client.Create(name, striping);
    ASSERT_TRUE(fd.ok());

    const ByteCount file_span = 1 << 18;
    ByteBuffer oracle(file_span, std::byte{0});

    // Random disjoint ascending file regions.
    ExtentList file;
    FileOffset pos = rng.Uniform(0, 999);
    while (pos < file_span - 2000 && file.size() < 200) {
      ByteCount len = rng.Uniform(1, 997);
      file.push_back(Extent{pos, len});
      pos += len + rng.Uniform(1, 2048);
    }
    ByteCount total = TotalBytes(file);
    ByteBuffer buffer(total);
    FillPattern(buffer, round, 0);
    ExtentList mem{{0, total}};

    ASSERT_TRUE(client.WriteList(*fd, mem, buffer, file).ok());
    // Maintain the oracle.
    size_t cursor = 0;
    for (const Extent& e : file) {
      std::copy(buffer.begin() + cursor, buffer.begin() + cursor + e.length,
                oracle.begin() + static_cast<std::ptrdiff_t>(e.offset));
      cursor += e.length;
    }

    // Read back the whole span contiguously and compare with the oracle.
    ByteBuffer image(file_span);
    ASSERT_TRUE(client.Read(*fd, 0, image).ok());
    ASSERT_EQ(image, oracle) << "round " << round;
    ASSERT_TRUE(client.Close(*fd).ok());
  }
}

TEST(Client, ParallelFanoutMovesIdenticalBytes) {
  InProcCluster cluster;
  Client::Options options;
  options.parallel_fanout = true;
  Client parallel(cluster.transport.get(), options);
  Client serial = cluster.MakeClient();

  auto pfd = parallel.Create("par", kDefault);
  auto sfd = serial.Create("ser", kDefault);
  ASSERT_TRUE(pfd.ok());
  ASSERT_TRUE(sfd.ok());

  // A large contiguous write fans out to all 8 servers concurrently.
  ByteBuffer data(2 * 1024 * 1024 + 777);
  FillPattern(data, 6, 0);
  ASSERT_TRUE(parallel.Write(*pfd, 100, data).ok());
  ASSERT_TRUE(serial.Write(*sfd, 100, data).ok());

  ByteBuffer a(data.size());
  ByteBuffer b(data.size());
  ASSERT_TRUE(parallel.Read(*pfd, 100, a).ok());
  ASSERT_TRUE(serial.Read(*sfd, 100, b).ok());
  EXPECT_EQ(a, data);
  EXPECT_EQ(a, b);
  EXPECT_EQ(parallel.stats().messages, serial.stats().messages);

  // List I/O across many servers under parallel fan-out.
  ExtentList file;
  for (int i = 0; i < 100; ++i) {
    file.push_back(Extent{static_cast<FileOffset>(i) * 20000, 500});
  }
  ByteBuffer buffer(TotalBytes(file));
  FillPattern(buffer, 7, 0);
  ExtentList mem{{0, buffer.size()}};
  ASSERT_TRUE(parallel.WriteList(*pfd, mem, buffer, file).ok());
  ByteBuffer out(buffer.size());
  ASSERT_TRUE(parallel.ReadList(*pfd, mem, out, file).ok());
  EXPECT_EQ(out, buffer);
}

TEST(Client, ListFilesByPrefix) {
  InProcCluster cluster;
  Client client = cluster.MakeClient();
  for (const char* name : {"/a/one", "/a/two", "/b/one"}) {
    auto fd = client.Create(name, kDefault);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(client.Close(*fd).ok());
  }
  auto all = client.ListFiles();
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(*all, (std::vector<std::string>{"/a/one", "/a/two", "/b/one"}));

  auto under_a = client.ListFiles("/a/");
  ASSERT_TRUE(under_a.ok());
  EXPECT_EQ(*under_a, (std::vector<std::string>{"/a/one", "/a/two"}));

  auto none = client.ListFiles("/zzz");
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());

  ASSERT_TRUE(client.Remove("/a/one").ok());
  auto after = client.ListFiles("/a/");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, (std::vector<std::string>{"/a/two"}));
}

TEST(Client, SegmentChunkingMatchesPaperFlashArithmetic) {
  // 2002/ROMIO-compatible chunking: the 64-entry cap binds on the finer
  // (memory) side. A scaled FLASH-like pattern: 4 file chunks of 512 B,
  // memory fragmented into 8-byte variables -> 256 segments -> 4 requests
  // at limit 64, while the native client needs only 1.
  InProcCluster cluster;
  ExtentList file;
  ExtentList mem;
  for (int c = 0; c < 4; ++c) {
    file.push_back(Extent{static_cast<FileOffset>(c) * 4096, 512});
    for (int v = 0; v < 64; ++v) {
      mem.push_back(Extent{static_cast<ByteCount>(c) * 2048 +
                               static_cast<ByteCount>(v) * 24,
                           8});
    }
  }
  ByteBuffer buffer(4 * 2048);
  FillPattern(buffer, 1, 0);

  Client native(cluster.transport.get(), kMaxListRegions,
                ListChunking::kFileRegions);
  auto nfd = native.Create("native", kDefault);
  ASSERT_TRUE(nfd.ok());
  ASSERT_TRUE(native.WriteList(*nfd, mem, buffer, file).ok());
  EXPECT_EQ(native.stats().fs_requests, 1u);

  Client romio(cluster.transport.get(), kMaxListRegions,
               ListChunking::kMatchedSegments);
  auto rfd = romio.Create("romio", kDefault);
  ASSERT_TRUE(rfd.ok());
  ASSERT_TRUE(romio.WriteList(*rfd, mem, buffer, file).ok());
  EXPECT_EQ(romio.stats().fs_requests, 4u);  // 256 segments / 64

  // Both clients must produce identical file images.
  ByteBuffer a(4096 * 4);
  ByteBuffer b(4096 * 4);
  ASSERT_TRUE(native.Read(*nfd, 0, a).ok());
  ASSERT_TRUE(romio.Read(*rfd, 0, b).ok());
  EXPECT_EQ(a, b);
}

TEST(Client, SegmentChunkingEqualsNativeForContiguousMemory) {
  InProcCluster cluster;
  Client romio(cluster.transport.get(), kMaxListRegions,
               ListChunking::kMatchedSegments);
  auto fd = romio.Create("f", kDefault);
  ASSERT_TRUE(fd.ok());
  romio.ResetStats();
  ExtentList file;
  for (int i = 0; i < 100; ++i) {
    file.push_back(Extent{static_cast<FileOffset>(i) * 1000, 64});
  }
  ByteBuffer buffer(TotalBytes(file));
  ExtentList mem{{0, buffer.size()}};
  ASSERT_TRUE(romio.WriteList(*fd, mem, buffer, file).ok());
  EXPECT_EQ(romio.stats().fs_requests, 2u);  // ceil(100/64), same as native
}

}  // namespace
}  // namespace pvfs
