// Parallel runtime tests: SPMD groups, barriers, and the threaded cluster
// with genuinely concurrent clients against daemon event loops.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/bytes.hpp"
#include "io/method.hpp"
#include "runtime/spmd.hpp"
#include "runtime/threaded_cluster.hpp"
#include "workloads/cyclic.hpp"

namespace pvfs::runtime {
namespace {

TEST(Spmd, AllRanksRun) {
  std::atomic<std::uint32_t> mask{0};
  RunSpmd(8, [&](SpmdContext& ctx) {
    mask.fetch_or(1u << ctx.rank());
    EXPECT_EQ(ctx.size(), 8u);
  });
  EXPECT_EQ(mask.load(), 0xFFu);
}

TEST(Spmd, BarrierSynchronizes) {
  constexpr std::uint32_t kRanks = 6;
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  RunSpmd(kRanks, [&](SpmdContext& ctx) {
    before.fetch_add(1);
    ctx.Barrier();
    // After the barrier every rank must observe all arrivals.
    if (before.load() != kRanks) violated = true;
  });
  EXPECT_FALSE(violated.load());
}

TEST(Spmd, ExceptionPropagatesToCaller) {
  EXPECT_THROW(
      RunSpmd(3, [&](SpmdContext& ctx) {
        if (ctx.rank() == 1) throw std::runtime_error("rank 1 failed");
      }),
      std::runtime_error);
}

TEST(ThreadedCluster, SingleClientRoundTrip) {
  ThreadedCluster cluster(8);
  Client client(&cluster.transport());
  auto fd = client.Create("f", Striping{0, 8, 16384});
  ASSERT_TRUE(fd.ok());
  ByteBuffer data(100000);
  FillPattern(data, 1, 0);
  ASSERT_TRUE(client.Write(*fd, 0, data).ok());
  ByteBuffer out(data.size());
  ASSERT_TRUE(client.Read(*fd, 0, out).ok());
  EXPECT_EQ(out, data);
}

TEST(ThreadedCluster, ConcurrentClientsDisjointFiles) {
  ThreadedCluster cluster(8);
  RunSpmd(8, [&](SpmdContext& ctx) {
    Client client(&cluster.transport());
    std::string name = "file" + std::to_string(ctx.rank());
    auto fd = client.Create(name, Striping{0, 8, 16384});
    ASSERT_TRUE(fd.ok());
    ByteBuffer data(50000);
    FillPattern(data, ctx.rank(), 0);
    ASSERT_TRUE(client.Write(*fd, 0, data).ok());
    ByteBuffer out(data.size());
    ASSERT_TRUE(client.Read(*fd, 0, out).ok());
    ASSERT_EQ(out, data);
    ASSERT_TRUE(client.Close(*fd).ok());
  });
}

TEST(ThreadedCluster, ConcurrentCyclicWritersShareOneFile) {
  // The paper's artificial benchmark shape: every rank writes its cyclic
  // share of one file concurrently with list I/O; the merged image must
  // interleave perfectly.
  ThreadedCluster cluster(8);
  constexpr std::uint32_t kClients = 4;
  workloads::CyclicConfig config{1 << 18, kClients, 64};

  {
    Client setup(&cluster.transport());
    ASSERT_TRUE(setup.Create("shared", Striping{0, 8, 16384}).ok());
  }

  RunSpmd(kClients, [&](SpmdContext& ctx) {
    Client client(&cluster.transport());
    auto fd = client.Open("shared");
    ASSERT_TRUE(fd.ok());
    auto pattern = workloads::CyclicPattern(config, ctx.rank());
    ByteBuffer buffer(config.BytesPerClient());
    FillPattern(buffer, 9000 + ctx.rank(), 0);
    ASSERT_TRUE(
        client.WriteList(*fd, pattern.memory, buffer, pattern.file).ok());
    ctx.Barrier();
    // Cross-verify: read the next rank's share.
    Rank peer = (ctx.rank() + 1) % kClients;
    auto peer_pattern = workloads::CyclicPattern(config, peer);
    ByteBuffer peer_buf(config.BytesPerClient());
    ASSERT_TRUE(client
                    .ReadList(*fd, peer_pattern.memory, peer_buf,
                              peer_pattern.file)
                    .ok());
    EXPECT_FALSE(FindPatternMismatch(peer_buf, 9000 + peer, 0).has_value());
  });
}

TEST(ThreadedCluster, ConcurrentMixedMethodsAgree) {
  ThreadedCluster cluster(4);
  // One writer per method on disjoint file ranges of a shared file.
  const io::MethodType kMethods[] = {
      io::MethodType::kMultiple, io::MethodType::kList,
      io::MethodType::kHybrid};
  {
    Client setup(&cluster.transport());
    ASSERT_TRUE(setup.Create("mixed", Striping{0, 4, 4096}).ok());
  }
  RunSpmd(3, [&](SpmdContext& ctx) {
    Client client(&cluster.transport());
    auto fd = client.Open("mixed");
    ASSERT_TRUE(fd.ok());
    io::AccessPattern pattern;
    FileOffset base = ctx.rank() * (1 << 20);
    for (int i = 0; i < 100; ++i) {
      pattern.file.push_back(Extent{base + i * 512, 256});
    }
    pattern.memory = {Extent{0, 100 * 256}};
    ByteBuffer buffer(100 * 256);
    FillPattern(buffer, ctx.rank(), 0);
    auto method = io::MakeMethod(kMethods[ctx.rank()]);
    ASSERT_TRUE(method->Write(client, *fd, pattern, buffer).ok());
  });

  // Verify all three regions with a fourth client.
  Client verifier(&cluster.transport());
  auto fd = verifier.Open("mixed");
  ASSERT_TRUE(fd.ok());
  for (Rank r = 0; r < 3; ++r) {
    FileOffset base = r * (1 << 20);
    for (int i = 0; i < 100; ++i) {
      ByteBuffer piece(256);
      ASSERT_TRUE(verifier.Read(*fd, base + i * 512, piece).ok());
      EXPECT_FALSE(
          FindPatternMismatch(piece, r, static_cast<ByteCount>(i) * 256)
              .has_value())
          << "rank " << r << " piece " << i;
    }
  }
}

TEST(ThreadedCluster, SievingWritersSerializeAcrossThreads) {
  ThreadedCluster cluster(4);
  {
    Client setup(&cluster.transport());
    ASSERT_TRUE(setup.Create("sieve", Striping{0, 4, 4096}).ok());
  }
  io::MutexSerializer serializer;
  constexpr std::uint32_t kClients = 4;
  constexpr int kPieces = 32;
  constexpr ByteCount kPiece = 64;

  RunSpmd(kClients, [&](SpmdContext& ctx) {
    Client client(&cluster.transport());
    auto fd = client.Open("sieve");
    ASSERT_TRUE(fd.ok());
    io::AccessPattern pattern;
    for (int i = 0; i < kPieces; ++i) {
      pattern.file.push_back(
          Extent{(static_cast<FileOffset>(i) * kClients + ctx.rank()) *
                     kPiece,
                 kPiece});
    }
    pattern.memory = {Extent{0, kPieces * kPiece}};
    ByteBuffer buffer(kPieces * kPiece);
    FillPattern(buffer, 50 + ctx.rank(), 0);
    io::MethodOptions options;
    options.sieve_buffer_bytes = 2048;  // many overlapping RMW windows
    options.serializer = &serializer;
    auto method = io::MakeMethod(io::MethodType::kDataSieving, options);
    ASSERT_TRUE(method->Write(client, *fd, pattern, buffer).ok());
  });

  Client verifier(&cluster.transport());
  auto fd = verifier.Open("sieve");
  ByteBuffer image(kPieces * kPiece * kClients);
  ASSERT_TRUE(verifier.Read(*fd, 0, image).ok());
  for (Rank r = 0; r < kClients; ++r) {
    for (int i = 0; i < kPieces; ++i) {
      for (ByteCount b = 0; b < kPiece; ++b) {
        ASSERT_EQ(image[(i * kClients + r) * kPiece + b],
                  PatternByte(50 + r, i * kPiece + b))
            << "rank " << r << " piece " << i;
      }
    }
  }
}

}  // namespace
}  // namespace pvfs::runtime
