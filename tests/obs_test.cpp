// Tests for the observability layer (src/obs): metrics registry with
// label canonicalization, JSON model round-trips, span tracing with
// cross-layer request-id propagation, the stats-over-the-wire protocol,
// and regression tests for the bugs this layer's migration surfaced
// (fail-fast retry accounting, synchronized backoff, histogram bound
// canonicalization, empty-accumulator JSON).
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/request_id.hpp"
#include "common/wire.hpp"
#include "fault/fault.hpp"
#include "fault/fault_transport.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/stats.hpp"
#include "simcluster/sim_run.hpp"
#include "simcluster/workload_streams.hpp"
#include "test_cluster.hpp"
#include "workloads/cyclic.hpp"

namespace pvfs {
namespace {

using std::chrono::microseconds;

constexpr Striping kStriping{0, 8, 16384};

// ---- Metrics registry ---------------------------------------------------

TEST(Registry, FindOrCreateCanonicalizesLabelOrder) {
  obs::Registry reg;
  obs::Counter& a = reg.Counter("reqs", {{"b", "2"}, {"a", "1"}});
  obs::Counter& b = reg.Counter("reqs", {{"a", "1"}, {"b", "2"}});
  EXPECT_EQ(&a, &b);  // same instrument regardless of label order

  obs::Counter& c = reg.Counter("reqs", {{"a", "1"}, {"b", "3"}});
  EXPECT_NE(&a, &c);
  obs::Counter& d = reg.Counter("other", {{"a", "1"}, {"b", "2"}});
  EXPECT_NE(&a, &d);

  a.Increment(5);
  EXPECT_EQ(b.value(), 5u);
  EXPECT_EQ(c.value(), 0u);
}

TEST(Registry, GaugeSetAndAdd) {
  obs::Registry reg;
  obs::Gauge& g = reg.Gauge("open_files");
  g.Set(7);
  g.Add(-3);
  EXPECT_EQ(g.value(), 4);
  EXPECT_EQ(reg.Gauge("open_files").value(), 4);
}

TEST(Registry, HistogramQuantilesTrackObservations) {
  obs::Registry reg;
  obs::Histogram& h = reg.Histogram("lat", {}, {1.0, 2.0, 4.0, 8.0, 16.0});
  for (int i = 1; i <= 100; ++i) h.Observe(static_cast<double>(i) * 0.1);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.min(), 0.1);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  const double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 2.0);
  EXPECT_LE(p50, 8.0);
  EXPECT_LE(h.Quantile(0.1), h.Quantile(0.9));  // monotone
  EXPECT_GE(h.Quantile(0.0), h.min());
  EXPECT_LE(h.Quantile(1.0), h.max());
}

TEST(Registry, EmptyHistogramReportsNull) {
  obs::Registry reg;
  obs::Histogram& h = reg.Histogram("lat");
  EXPECT_TRUE(std::isnan(h.Quantile(0.5)));
  obs::JsonValue summary = h.SummaryJson();
  ASSERT_NE(summary.Find("min"), nullptr);
  EXPECT_TRUE(summary.Find("min")->is_null());
  EXPECT_TRUE(summary.Find("max")->is_null());
  EXPECT_TRUE(summary.Find("p50")->is_null());
  EXPECT_EQ(summary.Find("count")->as_uint(), 0u);
}

TEST(Registry, SnapshotShape) {
  obs::Registry reg;
  reg.Counter("ops", {{"method", "list"}}).Increment(3);
  reg.Gauge("files").Set(2);
  reg.Histogram("lat").Observe(0.5);

  obs::JsonValue snap = reg.Snapshot();
  ASSERT_TRUE(snap.is_object());
  const obs::JsonValue* counters = snap.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_EQ(counters->size(), 1u);
  const obs::JsonValue& row = counters->at(0);
  EXPECT_EQ(row.Find("name")->as_string(), "ops");
  EXPECT_EQ(row.Find("value")->as_uint(), 3u);
  EXPECT_EQ(row.Find("labels")->Find("method")->as_string(), "list");
  EXPECT_EQ(snap.Find("gauges")->size(), 1u);
  EXPECT_EQ(snap.Find("histograms")->size(), 1u);
}

// ---- JSON model ---------------------------------------------------------

TEST(Json, DumpParseRoundTrip) {
  obs::JsonValue root = obs::JsonValue::Object();
  root.Set("str", obs::JsonValue("he\"llo\n\t\\"));
  root.Set("int", obs::JsonValue(std::int64_t{-42}));
  root.Set("uint", obs::JsonValue(std::uint64_t{18446744073709551615ull}));
  root.Set("dbl", obs::JsonValue(1.5));
  root.Set("yes", obs::JsonValue(true));
  root.Set("nil", obs::JsonValue::Null());
  obs::JsonValue arr = obs::JsonValue::Array();
  arr.Append(obs::JsonValue(1));
  arr.Append(obs::JsonValue("two"));
  root.Set("arr", std::move(arr));

  for (int indent : {0, 2}) {
    auto parsed = obs::JsonValue::Parse(root.Dump(indent));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->Find("str")->as_string(), "he\"llo\n\t\\");
    EXPECT_EQ(parsed->Find("int")->as_int(), -42);
    EXPECT_EQ(parsed->Find("uint")->Dump(), "18446744073709551615");
    EXPECT_DOUBLE_EQ(parsed->Find("dbl")->as_double(), 1.5);
    EXPECT_TRUE(parsed->Find("yes")->as_bool());
    EXPECT_TRUE(parsed->Find("nil")->is_null());
    ASSERT_EQ(parsed->Find("arr")->size(), 2u);
    EXPECT_EQ(parsed->Find("arr")->at(1).as_string(), "two");
  }
}

TEST(Json, NanDumpsAsNull) {
  obs::JsonValue v(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(v.Dump(), "null");
}

TEST(Json, ParseRejectsTrailingGarbage) {
  EXPECT_FALSE(obs::JsonValue::Parse("{} x").ok());
  EXPECT_FALSE(obs::JsonValue::Parse("[1,]").ok());
  EXPECT_TRUE(obs::JsonValue::Parse("  {\"a\": [1, 2]}  ").ok());
}

// ---- Export adapters ----------------------------------------------------

TEST(Export, EmptyAccumulatorEmitsNullNotZero) {
  sim::Accumulator acc;
  obs::JsonValue empty = obs::AccumulatorJson(acc);
  EXPECT_TRUE(empty.Find("min")->is_null());
  EXPECT_TRUE(empty.Find("max")->is_null());
  EXPECT_TRUE(empty.Find("mean")->is_null());
  EXPECT_EQ(empty.Find("count")->as_uint(), 0u);

  // A genuine zero sample must NOT read as null — that is the bug: with
  // min()/max() returning 0.0 when empty, the two were indistinguishable.
  acc.Add(0.0);
  obs::JsonValue zero = obs::AccumulatorJson(acc);
  ASSERT_TRUE(zero.Find("min")->is_number());
  EXPECT_DOUBLE_EQ(zero.Find("min")->as_double(), 0.0);
}

TEST(Export, FaultCountersMirrorIntoRegistry) {
  sim::FaultCounters faults;
  faults.frames_dropped = 4;
  faults.retransmits = 2;
  obs::Registry reg;
  obs::ExportFaultCounters(reg, faults, {{"op", "read"}});
  EXPECT_EQ(reg.Counter("fault.frames_dropped", {{"op", "read"}}).value(),
            4u);
  EXPECT_EQ(reg.Counter("fault.retransmits", {{"op", "read"}}).value(), 2u);

  obs::JsonValue json = obs::FaultCountersJson(faults);
  EXPECT_EQ(json.Find("frames_dropped")->as_uint(), 4u);
  EXPECT_EQ(json.Find("total")->as_uint(), faults.total());
}

// ---- sim::Histogram regressions -----------------------------------------

TEST(SimHistogram, CanonicalizesNonIncreasingBounds) {
  // Non-increasing, duplicated and non-finite bounds used to be trusted
  // verbatim, breaking std::upper_bound's sorted-range requirement and
  // silently misbucketing every Add.
  sim::Histogram h({10.0, 1.0, 5.0, 5.0,
                    std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::quiet_NaN()});
  EXPECT_EQ(h.bounds(), (std::vector<double>{1.0, 5.0, 10.0}));

  h.Add(0.5);   // bucket (-inf, 1]
  h.Add(3.0);   // bucket (1, 5]
  h.Add(7.0);   // bucket (5, 10]
  h.Add(20.0);  // overflow
  EXPECT_EQ(h.counts(), (std::vector<std::uint64_t>{1, 1, 1, 1}));
}

TEST(SimHistogram, QuantileClampedAndMonotone) {
  sim::Histogram h(sim::LogLatencyBuckets(1e-6, 1e3));
  EXPECT_TRUE(std::isnan(h.Quantile(0.5)));
  for (int i = 0; i < 1000; ++i) h.Add(1e-3 * (1 + i % 10));
  const double p50 = h.Quantile(0.5);
  const double p99 = h.Quantile(0.99);
  EXPECT_GE(p50, h.summary().min());
  EXPECT_LE(p99, h.summary().max());
  EXPECT_LE(p50, p99);
}

// ---- Spans & request-id propagation -------------------------------------

TEST(Spans, DisabledByDefaultRecordsNothing) {
  obs::SetSpanTracing(false);
  (void)obs::DrainSpans();
  {
    PVFS_SPAN("test.noop");
  }
  testutil::InProcCluster cluster;
  Client client = cluster.MakeClient();
  auto fd = client.Create("f", kStriping);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(client.Close(*fd).ok());
  EXPECT_TRUE(obs::DrainSpans().empty());
}

TEST(Spans, NestingDepthAndAmbientRequestId) {
  obs::SetSpanTracing(true);
  (void)obs::DrainSpans();
  {
    obs::RequestIdScope scope(1234);
    PVFS_SPAN("outer");
    {
      PVFS_SPAN("inner");
    }
  }
  obs::SetSpanTracing(false);
  auto spans = obs::DrainSpans();
  ASSERT_EQ(spans.size(), 2u);
  // Drain order is by start time: outer first.
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0u);
  EXPECT_STREQ(spans[1].name, "inner");
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_EQ(spans[0].request_id, 1234u);
  EXPECT_EQ(spans[1].request_id, 1234u);
  EXPECT_GE(spans[0].duration_ns, spans[1].duration_ns);
}

TEST(Spans, RequestIdPropagatesClientToManagerToIod) {
  testutil::InProcCluster cluster;
  Client client = cluster.MakeClient();

  obs::SetSpanTracing(true);
  (void)obs::DrainSpans();
  auto fd = client.Create("f", kStriping);
  ASSERT_TRUE(fd.ok());
  ByteBuffer data(3 * 16384);
  FillPattern(data, 5, 0);
  ASSERT_TRUE(client.Write(*fd, 0, data).ok());
  ASSERT_TRUE(client.Close(*fd).ok());
  obs::SetSpanTracing(false);

  auto spans = obs::DrainSpans();
  std::vector<std::uint64_t> client_ids;
  bool saw_manager = false;
  bool saw_iod = false;
  for (const auto& s : spans) {
    if (std::string_view(s.name) == "client.call") {
      EXPECT_NE(s.request_id, 0u);
      client_ids.push_back(s.request_id);
    }
  }
  ASSERT_FALSE(client_ids.empty());
  // Every daemon-side span carries the id the client sealed into the
  // frame for that exchange — the cross-layer stitch.
  for (const auto& s : spans) {
    const std::string_view name(s.name);
    if (name != "manager.handle" && name != "iod.handle") continue;
    (name == "manager.handle" ? saw_manager : saw_iod) = true;
    EXPECT_NE(s.request_id, 0u);
    EXPECT_NE(std::find(client_ids.begin(), client_ids.end(), s.request_id),
              client_ids.end())
        << name << " span has request id " << s.request_id
        << " not allocated by any client.call";
  }
  EXPECT_TRUE(saw_manager);
  EXPECT_TRUE(saw_iod);

  obs::JsonValue json = obs::SpansJson(spans);
  ASSERT_TRUE(json.is_array());
  EXPECT_EQ(json.size(), spans.size());
}

TEST(Wire, FrameRoundTripsRequestId) {
  std::vector<std::byte> payload{std::byte{1}, std::byte{2}, std::byte{3}};
  auto sealed = SealFrameWithId(payload, 0xDEADBEEFCAFEull);
  EXPECT_EQ(sealed.size(), payload.size() + kFrameTrailerBytes);
  auto opened = OpenFrameWithId(sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->request_id, 0xDEADBEEFCAFEull);
  EXPECT_TRUE(std::equal(opened->payload.begin(), opened->payload.end(),
                         payload.begin(), payload.end()));
  // Plain OpenFrame still verifies and strips the whole trailer.
  auto plain = OpenFrame(sealed);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->size(), payload.size());
}

// ---- Stats over the wire (kStats) ---------------------------------------

TEST(Stats, FetchServerStatsReturnsParseableJson) {
  testutil::InProcCluster cluster;
  Client client = cluster.MakeClient();
  auto fd = client.Create("f", kStriping);
  ASSERT_TRUE(fd.ok());
  ByteBuffer data(16384);
  FillPattern(data, 9, 0);
  ASSERT_TRUE(client.Write(*fd, 0, data).ok());
  ASSERT_TRUE(client.Close(*fd).ok());

  auto mgr = client.FetchServerStats(-1);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  auto mgr_json = obs::JsonValue::Parse(*mgr);
  ASSERT_TRUE(mgr_json.ok());
  EXPECT_EQ(mgr_json->Find("role")->as_string(), "manager");
  EXPECT_GE(mgr_json->Find("requests")->as_uint(), 2u);  // create+close

  auto iod = client.FetchServerStats(0);
  ASSERT_TRUE(iod.ok());
  auto iod_json = obs::JsonValue::Parse(*iod);
  ASSERT_TRUE(iod_json.ok());
  EXPECT_EQ(iod_json->Find("role")->as_string(), "iod");
  EXPECT_EQ(iod_json->Find("server")->as_uint(), 0u);
}

TEST(Stats, ComponentsExportMetricsIntoOneRegistry) {
  testutil::InProcCluster cluster;
  Client client = cluster.MakeClient();
  auto fd = client.Create("f", kStriping);
  ASSERT_TRUE(fd.ok());
  ByteBuffer data(2 * 16384);
  FillPattern(data, 3, 0);
  ASSERT_TRUE(client.Write(*fd, 0, data).ok());
  ASSERT_TRUE(client.Close(*fd).ok());

  obs::Registry reg;
  client.ExportMetrics(reg, {{"component", "client"}});
  cluster.manager.ExportMetrics(reg);
  for (auto& iod : cluster.iods) iod->ExportMetrics(reg);

  EXPECT_GE(reg.Counter("client.operations", {{"component", "client"}})
                .value(),
            1u);
  EXPECT_GE(reg.Counter("manager.requests").value(), 2u);
  // The write touched iods 0 and 1; their per-server labels keep the
  // instruments distinct in one registry.
  EXPECT_GE(reg.Counter("iod.bytes_written", {{"server", "0"}}).value(),
            16384u);
  EXPECT_GE(reg.Counter("iod.bytes_written", {{"server", "1"}}).value(),
            16384u);
}

// ---- Bugfix regressions -------------------------------------------------

// ExchangeWithServer with max_attempts <= 1 (fail fast) used to return
// the retryable error WITHOUT counting the exchange as exhausted, so the
// counter under-reported exactly when retries were disabled.
TEST(RetryRegression, FailFastCountsExhaustedAndKeepsOriginalError) {
  testutil::InProcCluster cluster;
  Client reliable = cluster.MakeClient();
  auto fd = reliable.Create("f", kStriping);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(reliable.Close(*fd).ok());

  fault::FaultConfig config;
  config.crash_rate = 1.0;  // every iod call refused with kUnavailable
  config.crash_down_calls = 1000;
  fault::FaultInjector injector(config);
  fault::FaultInjectingTransport faulty(cluster.transport.get(), &injector);

  Client::Options options;
  options.retry.max_attempts = 1;  // historical fail-fast default
  Client client(&faulty, options);
  auto fd2 = client.Open("f");
  ASSERT_TRUE(fd2.ok());
  ByteBuffer data(16384);
  Status s = client.Write(*fd2, 0, data);
  ASSERT_FALSE(s.ok());
  // The original retryable error surfaces unchanged (not rewrapped as
  // kDeadlineExceeded by the retry loop).
  EXPECT_EQ(s.code(), ErrorCode::kUnavailable);
  EXPECT_GE(client.retry_counters().exhausted, 1u);
  EXPECT_EQ(client.retry_counters().retries, 0u);
}

TEST(RetryRegression, ExhaustedBudgetStillCountsWithRetriesEnabled) {
  testutil::InProcCluster cluster;
  Client reliable = cluster.MakeClient();
  auto fd = reliable.Create("f", kStriping);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(reliable.Close(*fd).ok());

  fault::FaultConfig config;
  config.crash_rate = 1.0;
  config.crash_down_calls = 1000;
  fault::FaultInjector injector(config);
  fault::FaultInjectingTransport faulty(cluster.transport.get(), &injector);

  Client::Options options;
  options.retry.max_attempts = 3;
  options.retry.initial_backoff = microseconds{1};
  options.retry.max_backoff = microseconds{8};
  Client client(&faulty, options);
  auto fd2 = client.Open("f");
  ASSERT_TRUE(fd2.ok());
  ByteBuffer data(16384);
  Status s = client.Write(*fd2, 0, data);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kDeadlineExceeded);
  EXPECT_GE(client.retry_counters().exhausted, 1u);
  EXPECT_GE(client.retry_counters().retries, 2u);
}

// Both client backoff loops used pure exponential doubling: concurrent
// clients that failed together retried together, collided again, and
// re-dilated in lockstep. The fix draws decorrelated jitter from the
// deterministic hashed-seed scheme.
TEST(RetryRegression, BackoffDoublesWithJitterOffAndVariesWithJitterOn) {
  auto run_faulty_write = [](Client::RetryPolicy retry) {
    testutil::InProcCluster cluster;
    Client reliable = cluster.MakeClient();
    auto fd = reliable.Create("f", kStriping);
    EXPECT_TRUE(fd.ok());
    EXPECT_TRUE(reliable.Close(*fd).ok());

    fault::FaultConfig config;
    config.crash_rate = 1.0;
    config.crash_down_calls = 1000;
    fault::FaultInjector injector(config);
    fault::FaultInjectingTransport faulty(cluster.transport.get(),
                                          &injector);
    Client::Options options;
    options.retry = retry;
    Client client(&faulty, options);
    auto fd2 = client.Open("f");
    EXPECT_TRUE(fd2.ok());
    ByteBuffer data(16384);
    (void)client.Write(*fd2, 0, data);
    return client.retry_counters();
  };

  Client::RetryPolicy doubling;
  doubling.max_attempts = 4;
  doubling.initial_backoff = microseconds{100};
  doubling.max_backoff = microseconds{10000};
  doubling.jitter = false;
  // Sleeps: 100, 200, 400 — exact doubling from initial.
  EXPECT_EQ(run_faulty_write(doubling).backoff_us, 700u);

  Client::RetryPolicy jittered = doubling;
  jittered.jitter = true;
  const std::uint64_t total = run_faulty_write(jittered).backoff_us;
  // First sleep is always `initial`; each later one is drawn from
  // [initial, min(cap, 3*prev)].
  EXPECT_GE(total, 300u);
  EXPECT_LE(total, 100u + 2 * 10000u);
}

TEST(RetryRegression, JitterDrawsAreDeterministicPerAddress) {
  const double u =
      fault::HashedUniform(1, fault::kSiteRetryBackoff, 42, 2, 0);
  EXPECT_EQ(u, fault::HashedUniform(1, fault::kSiteRetryBackoff, 42, 2, 0));
  EXPECT_GE(u, 0.0);
  EXPECT_LT(u, 1.0);
  // Distinct streams / sequence numbers / seeds decorrelate.
  EXPECT_NE(u, fault::HashedUniform(1, fault::kSiteRetryBackoff, 43, 2, 0));
  EXPECT_NE(u, fault::HashedUniform(1, fault::kSiteRetryBackoff, 42, 3, 0));
  EXPECT_NE(u, fault::HashedUniform(2, fault::kSiteRetryBackoff, 42, 2, 0));
  EXPECT_NE(u, fault::HashedUniform(1, fault::kSiteLockBackoff, 42, 2, 0));
}

// ---- Zero overhead when disabled ----------------------------------------

// The sim results the figures are built from must be bit-identical with
// span tracing on or off: spans observe, they never feed back into
// simulated timing.
TEST(ZeroOverhead, SimResultsIdenticalWithSpansOnOrOff) {
  workloads::CyclicConfig config{4 * 1024 * 1024, 4, 2000};
  simcluster::SimWorkload workload;
  workload.file_regions = [config](Rank r) {
    return std::make_unique<simcluster::CyclicStream>(config, r);
  };
  auto run = [&] {
    return simcluster::RunSimWorkload(simcluster::ChibaCityConfig(4),
                                      io::MethodType::kList, IoOp::kRead,
                                      workload);
  };

  obs::SetSpanTracing(false);
  auto baseline = run();
  obs::SetSpanTracing(true);
  auto traced = run();
  obs::SetSpanTracing(false);
  (void)obs::DrainSpans();

  EXPECT_EQ(baseline.io_seconds, traced.io_seconds);  // bitwise, no epsilon
  EXPECT_EQ(baseline.total_seconds, traced.total_seconds);
  EXPECT_EQ(baseline.counters.fs_requests, traced.counters.fs_requests);
  EXPECT_EQ(baseline.counters.messages, traced.counters.messages);
  EXPECT_EQ(baseline.events, traced.events);
  EXPECT_EQ(baseline.mean_request_latency_s, traced.mean_request_latency_s);
  EXPECT_EQ(baseline.p99_request_latency_s, traced.p99_request_latency_s);
}

}  // namespace
}  // namespace pvfs
