file(REMOVE_RECURSE
  "CMakeFiles/pvfs_fs.dir/client.cpp.o"
  "CMakeFiles/pvfs_fs.dir/client.cpp.o.d"
  "CMakeFiles/pvfs_fs.dir/distribution.cpp.o"
  "CMakeFiles/pvfs_fs.dir/distribution.cpp.o.d"
  "CMakeFiles/pvfs_fs.dir/iod.cpp.o"
  "CMakeFiles/pvfs_fs.dir/iod.cpp.o.d"
  "CMakeFiles/pvfs_fs.dir/manager.cpp.o"
  "CMakeFiles/pvfs_fs.dir/manager.cpp.o.d"
  "CMakeFiles/pvfs_fs.dir/posixio.cpp.o"
  "CMakeFiles/pvfs_fs.dir/posixio.cpp.o.d"
  "CMakeFiles/pvfs_fs.dir/protocol.cpp.o"
  "CMakeFiles/pvfs_fs.dir/protocol.cpp.o.d"
  "CMakeFiles/pvfs_fs.dir/store.cpp.o"
  "CMakeFiles/pvfs_fs.dir/store.cpp.o.d"
  "libpvfs_fs.a"
  "libpvfs_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfs_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
