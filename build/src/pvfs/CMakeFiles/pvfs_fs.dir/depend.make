# Empty dependencies file for pvfs_fs.
# This may be replaced when dependencies are built.
