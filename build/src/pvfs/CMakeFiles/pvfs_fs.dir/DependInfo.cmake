
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pvfs/client.cpp" "src/pvfs/CMakeFiles/pvfs_fs.dir/client.cpp.o" "gcc" "src/pvfs/CMakeFiles/pvfs_fs.dir/client.cpp.o.d"
  "/root/repo/src/pvfs/distribution.cpp" "src/pvfs/CMakeFiles/pvfs_fs.dir/distribution.cpp.o" "gcc" "src/pvfs/CMakeFiles/pvfs_fs.dir/distribution.cpp.o.d"
  "/root/repo/src/pvfs/iod.cpp" "src/pvfs/CMakeFiles/pvfs_fs.dir/iod.cpp.o" "gcc" "src/pvfs/CMakeFiles/pvfs_fs.dir/iod.cpp.o.d"
  "/root/repo/src/pvfs/manager.cpp" "src/pvfs/CMakeFiles/pvfs_fs.dir/manager.cpp.o" "gcc" "src/pvfs/CMakeFiles/pvfs_fs.dir/manager.cpp.o.d"
  "/root/repo/src/pvfs/posixio.cpp" "src/pvfs/CMakeFiles/pvfs_fs.dir/posixio.cpp.o" "gcc" "src/pvfs/CMakeFiles/pvfs_fs.dir/posixio.cpp.o.d"
  "/root/repo/src/pvfs/protocol.cpp" "src/pvfs/CMakeFiles/pvfs_fs.dir/protocol.cpp.o" "gcc" "src/pvfs/CMakeFiles/pvfs_fs.dir/protocol.cpp.o.d"
  "/root/repo/src/pvfs/store.cpp" "src/pvfs/CMakeFiles/pvfs_fs.dir/store.cpp.o" "gcc" "src/pvfs/CMakeFiles/pvfs_fs.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pvfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
