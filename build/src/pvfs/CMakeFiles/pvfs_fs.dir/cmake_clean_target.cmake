file(REMOVE_RECURSE
  "libpvfs_fs.a"
)
