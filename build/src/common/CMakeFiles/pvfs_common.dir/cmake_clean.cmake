file(REMOVE_RECURSE
  "CMakeFiles/pvfs_common.dir/bytes.cpp.o"
  "CMakeFiles/pvfs_common.dir/bytes.cpp.o.d"
  "CMakeFiles/pvfs_common.dir/extent.cpp.o"
  "CMakeFiles/pvfs_common.dir/extent.cpp.o.d"
  "CMakeFiles/pvfs_common.dir/log.cpp.o"
  "CMakeFiles/pvfs_common.dir/log.cpp.o.d"
  "CMakeFiles/pvfs_common.dir/status.cpp.o"
  "CMakeFiles/pvfs_common.dir/status.cpp.o.d"
  "CMakeFiles/pvfs_common.dir/wire.cpp.o"
  "CMakeFiles/pvfs_common.dir/wire.cpp.o.d"
  "libpvfs_common.a"
  "libpvfs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
