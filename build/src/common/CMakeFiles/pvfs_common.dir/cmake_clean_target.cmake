file(REMOVE_RECURSE
  "libpvfs_common.a"
)
