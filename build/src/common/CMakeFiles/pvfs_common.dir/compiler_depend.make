# Empty compiler generated dependencies file for pvfs_common.
# This may be replaced when dependencies are built.
