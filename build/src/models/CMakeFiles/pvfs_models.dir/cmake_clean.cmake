file(REMOVE_RECURSE
  "CMakeFiles/pvfs_models.dir/disk.cpp.o"
  "CMakeFiles/pvfs_models.dir/disk.cpp.o.d"
  "CMakeFiles/pvfs_models.dir/page_cache.cpp.o"
  "CMakeFiles/pvfs_models.dir/page_cache.cpp.o.d"
  "libpvfs_models.a"
  "libpvfs_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfs_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
