# Empty compiler generated dependencies file for pvfs_models.
# This may be replaced when dependencies are built.
