file(REMOVE_RECURSE
  "libpvfs_models.a"
)
