file(REMOVE_RECURSE
  "CMakeFiles/pvfs_mpiio.dir/file.cpp.o"
  "CMakeFiles/pvfs_mpiio.dir/file.cpp.o.d"
  "libpvfs_mpiio.a"
  "libpvfs_mpiio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfs_mpiio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
