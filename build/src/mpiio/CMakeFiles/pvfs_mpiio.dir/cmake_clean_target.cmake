file(REMOVE_RECURSE
  "libpvfs_mpiio.a"
)
