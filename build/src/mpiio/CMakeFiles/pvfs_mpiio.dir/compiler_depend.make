# Empty compiler generated dependencies file for pvfs_mpiio.
# This may be replaced when dependencies are built.
