# Empty dependencies file for pvfs_tracelib.
# This may be replaced when dependencies are built.
