file(REMOVE_RECURSE
  "libpvfs_tracelib.a"
)
