file(REMOVE_RECURSE
  "CMakeFiles/pvfs_tracelib.dir/trace.cpp.o"
  "CMakeFiles/pvfs_tracelib.dir/trace.cpp.o.d"
  "libpvfs_tracelib.a"
  "libpvfs_tracelib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfs_tracelib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
