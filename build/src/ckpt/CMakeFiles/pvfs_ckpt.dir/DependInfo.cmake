
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ckpt/checkpoint.cpp" "src/ckpt/CMakeFiles/pvfs_ckpt.dir/checkpoint.cpp.o" "gcc" "src/ckpt/CMakeFiles/pvfs_ckpt.dir/checkpoint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpiio/CMakeFiles/pvfs_mpiio.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/pvfs_io.dir/DependInfo.cmake"
  "/root/repo/build/src/pvfs/CMakeFiles/pvfs_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pvfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
