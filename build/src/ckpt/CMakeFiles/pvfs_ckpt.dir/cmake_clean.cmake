file(REMOVE_RECURSE
  "CMakeFiles/pvfs_ckpt.dir/checkpoint.cpp.o"
  "CMakeFiles/pvfs_ckpt.dir/checkpoint.cpp.o.d"
  "libpvfs_ckpt.a"
  "libpvfs_ckpt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfs_ckpt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
