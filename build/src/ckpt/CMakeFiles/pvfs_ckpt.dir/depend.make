# Empty dependencies file for pvfs_ckpt.
# This may be replaced when dependencies are built.
