file(REMOVE_RECURSE
  "libpvfs_ckpt.a"
)
