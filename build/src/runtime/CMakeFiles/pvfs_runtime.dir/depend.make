# Empty dependencies file for pvfs_runtime.
# This may be replaced when dependencies are built.
