file(REMOVE_RECURSE
  "libpvfs_runtime.a"
)
