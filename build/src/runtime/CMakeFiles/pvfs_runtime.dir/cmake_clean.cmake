file(REMOVE_RECURSE
  "CMakeFiles/pvfs_runtime.dir/threaded_cluster.cpp.o"
  "CMakeFiles/pvfs_runtime.dir/threaded_cluster.cpp.o.d"
  "libpvfs_runtime.a"
  "libpvfs_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfs_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
