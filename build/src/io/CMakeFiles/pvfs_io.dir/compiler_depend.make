# Empty compiler generated dependencies file for pvfs_io.
# This may be replaced when dependencies are built.
