
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/access_pattern.cpp" "src/io/CMakeFiles/pvfs_io.dir/access_pattern.cpp.o" "gcc" "src/io/CMakeFiles/pvfs_io.dir/access_pattern.cpp.o.d"
  "/root/repo/src/io/data_sieving.cpp" "src/io/CMakeFiles/pvfs_io.dir/data_sieving.cpp.o" "gcc" "src/io/CMakeFiles/pvfs_io.dir/data_sieving.cpp.o.d"
  "/root/repo/src/io/datatype.cpp" "src/io/CMakeFiles/pvfs_io.dir/datatype.cpp.o" "gcc" "src/io/CMakeFiles/pvfs_io.dir/datatype.cpp.o.d"
  "/root/repo/src/io/datatype_io.cpp" "src/io/CMakeFiles/pvfs_io.dir/datatype_io.cpp.o" "gcc" "src/io/CMakeFiles/pvfs_io.dir/datatype_io.cpp.o.d"
  "/root/repo/src/io/hybrid_io.cpp" "src/io/CMakeFiles/pvfs_io.dir/hybrid_io.cpp.o" "gcc" "src/io/CMakeFiles/pvfs_io.dir/hybrid_io.cpp.o.d"
  "/root/repo/src/io/list_io.cpp" "src/io/CMakeFiles/pvfs_io.dir/list_io.cpp.o" "gcc" "src/io/CMakeFiles/pvfs_io.dir/list_io.cpp.o.d"
  "/root/repo/src/io/method.cpp" "src/io/CMakeFiles/pvfs_io.dir/method.cpp.o" "gcc" "src/io/CMakeFiles/pvfs_io.dir/method.cpp.o.d"
  "/root/repo/src/io/multiple_io.cpp" "src/io/CMakeFiles/pvfs_io.dir/multiple_io.cpp.o" "gcc" "src/io/CMakeFiles/pvfs_io.dir/multiple_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pvfs/CMakeFiles/pvfs_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pvfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
