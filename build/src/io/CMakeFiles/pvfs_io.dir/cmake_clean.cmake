file(REMOVE_RECURSE
  "CMakeFiles/pvfs_io.dir/access_pattern.cpp.o"
  "CMakeFiles/pvfs_io.dir/access_pattern.cpp.o.d"
  "CMakeFiles/pvfs_io.dir/data_sieving.cpp.o"
  "CMakeFiles/pvfs_io.dir/data_sieving.cpp.o.d"
  "CMakeFiles/pvfs_io.dir/datatype.cpp.o"
  "CMakeFiles/pvfs_io.dir/datatype.cpp.o.d"
  "CMakeFiles/pvfs_io.dir/datatype_io.cpp.o"
  "CMakeFiles/pvfs_io.dir/datatype_io.cpp.o.d"
  "CMakeFiles/pvfs_io.dir/hybrid_io.cpp.o"
  "CMakeFiles/pvfs_io.dir/hybrid_io.cpp.o.d"
  "CMakeFiles/pvfs_io.dir/list_io.cpp.o"
  "CMakeFiles/pvfs_io.dir/list_io.cpp.o.d"
  "CMakeFiles/pvfs_io.dir/method.cpp.o"
  "CMakeFiles/pvfs_io.dir/method.cpp.o.d"
  "CMakeFiles/pvfs_io.dir/multiple_io.cpp.o"
  "CMakeFiles/pvfs_io.dir/multiple_io.cpp.o.d"
  "libpvfs_io.a"
  "libpvfs_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfs_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
