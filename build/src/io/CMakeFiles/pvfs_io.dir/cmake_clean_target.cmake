file(REMOVE_RECURSE
  "libpvfs_io.a"
)
