file(REMOVE_RECURSE
  "libpvfs_net.a"
)
