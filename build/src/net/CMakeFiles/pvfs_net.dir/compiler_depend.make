# Empty compiler generated dependencies file for pvfs_net.
# This may be replaced when dependencies are built.
