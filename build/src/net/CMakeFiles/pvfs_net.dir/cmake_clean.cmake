file(REMOVE_RECURSE
  "CMakeFiles/pvfs_net.dir/socket_transport.cpp.o"
  "CMakeFiles/pvfs_net.dir/socket_transport.cpp.o.d"
  "libpvfs_net.a"
  "libpvfs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
