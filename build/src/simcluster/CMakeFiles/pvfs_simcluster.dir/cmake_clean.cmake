file(REMOVE_RECURSE
  "CMakeFiles/pvfs_simcluster.dir/sim_cluster.cpp.o"
  "CMakeFiles/pvfs_simcluster.dir/sim_cluster.cpp.o.d"
  "CMakeFiles/pvfs_simcluster.dir/sim_collective.cpp.o"
  "CMakeFiles/pvfs_simcluster.dir/sim_collective.cpp.o.d"
  "CMakeFiles/pvfs_simcluster.dir/sim_run.cpp.o"
  "CMakeFiles/pvfs_simcluster.dir/sim_run.cpp.o.d"
  "CMakeFiles/pvfs_simcluster.dir/workload_streams.cpp.o"
  "CMakeFiles/pvfs_simcluster.dir/workload_streams.cpp.o.d"
  "libpvfs_simcluster.a"
  "libpvfs_simcluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfs_simcluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
