file(REMOVE_RECURSE
  "libpvfs_simcluster.a"
)
