# Empty dependencies file for pvfs_simcluster.
# This may be replaced when dependencies are built.
