file(REMOVE_RECURSE
  "libpvfs_workloads.a"
)
