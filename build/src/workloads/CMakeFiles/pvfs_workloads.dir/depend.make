# Empty dependencies file for pvfs_workloads.
# This may be replaced when dependencies are built.
