file(REMOVE_RECURSE
  "CMakeFiles/pvfs_workloads.dir/blockblock.cpp.o"
  "CMakeFiles/pvfs_workloads.dir/blockblock.cpp.o.d"
  "CMakeFiles/pvfs_workloads.dir/cyclic.cpp.o"
  "CMakeFiles/pvfs_workloads.dir/cyclic.cpp.o.d"
  "CMakeFiles/pvfs_workloads.dir/flash.cpp.o"
  "CMakeFiles/pvfs_workloads.dir/flash.cpp.o.d"
  "CMakeFiles/pvfs_workloads.dir/strided.cpp.o"
  "CMakeFiles/pvfs_workloads.dir/strided.cpp.o.d"
  "CMakeFiles/pvfs_workloads.dir/tiledviz.cpp.o"
  "CMakeFiles/pvfs_workloads.dir/tiledviz.cpp.o.d"
  "libpvfs_workloads.a"
  "libpvfs_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfs_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
