# Empty dependencies file for pvfs_sim.
# This may be replaced when dependencies are built.
