file(REMOVE_RECURSE
  "libpvfs_sim.a"
)
