file(REMOVE_RECURSE
  "CMakeFiles/pvfs_sim.dir/simulator.cpp.o"
  "CMakeFiles/pvfs_sim.dir/simulator.cpp.o.d"
  "libpvfs_sim.a"
  "libpvfs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
