file(REMOVE_RECURSE
  "CMakeFiles/pvfs_trace.dir/pvfs_trace.cpp.o"
  "CMakeFiles/pvfs_trace.dir/pvfs_trace.cpp.o.d"
  "pvfs_trace"
  "pvfs_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfs_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
