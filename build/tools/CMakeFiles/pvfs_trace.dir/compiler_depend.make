# Empty compiler generated dependencies file for pvfs_trace.
# This may be replaced when dependencies are built.
