# Empty dependencies file for pvfsd.
# This may be replaced when dependencies are built.
