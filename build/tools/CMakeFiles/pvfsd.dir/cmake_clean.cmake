file(REMOVE_RECURSE
  "CMakeFiles/pvfsd.dir/pvfsd.cpp.o"
  "CMakeFiles/pvfsd.dir/pvfsd.cpp.o.d"
  "pvfsd"
  "pvfsd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
