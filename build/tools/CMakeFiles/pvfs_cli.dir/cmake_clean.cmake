file(REMOVE_RECURSE
  "CMakeFiles/pvfs_cli.dir/pvfs_cli.cpp.o"
  "CMakeFiles/pvfs_cli.dir/pvfs_cli.cpp.o.d"
  "pvfs_cli"
  "pvfs_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvfs_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
