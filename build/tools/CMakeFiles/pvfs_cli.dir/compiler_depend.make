# Empty compiler generated dependencies file for pvfs_cli.
# This may be replaced when dependencies are built.
