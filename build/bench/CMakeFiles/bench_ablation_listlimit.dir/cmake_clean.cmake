file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_listlimit.dir/ablation_listlimit.cpp.o"
  "CMakeFiles/bench_ablation_listlimit.dir/ablation_listlimit.cpp.o.d"
  "bench_ablation_listlimit"
  "bench_ablation_listlimit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_listlimit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
