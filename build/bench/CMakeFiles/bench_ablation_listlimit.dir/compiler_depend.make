# Empty compiler generated dependencies file for bench_ablation_listlimit.
# This may be replaced when dependencies are built.
