# Empty dependencies file for bench_scaling_servers.
# This may be replaced when dependencies are built.
