file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_servers.dir/scaling_servers.cpp.o"
  "CMakeFiles/bench_scaling_servers.dir/scaling_servers.cpp.o.d"
  "bench_scaling_servers"
  "bench_scaling_servers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_servers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
