# Empty dependencies file for bench_ablation_stripe.
# This may be replaced when dependencies are built.
