# Empty compiler generated dependencies file for bench_ablation_datatype.
# This may be replaced when dependencies are built.
