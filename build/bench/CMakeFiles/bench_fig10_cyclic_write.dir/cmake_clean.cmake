file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_cyclic_write.dir/fig10_cyclic_write.cpp.o"
  "CMakeFiles/bench_fig10_cyclic_write.dir/fig10_cyclic_write.cpp.o.d"
  "bench_fig10_cyclic_write"
  "bench_fig10_cyclic_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_cyclic_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
