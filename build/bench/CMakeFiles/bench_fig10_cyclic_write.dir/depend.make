# Empty dependencies file for bench_fig10_cyclic_write.
# This may be replaced when dependencies are built.
