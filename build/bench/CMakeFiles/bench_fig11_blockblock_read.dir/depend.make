# Empty dependencies file for bench_fig11_blockblock_read.
# This may be replaced when dependencies are built.
