file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_blockblock_read.dir/fig11_blockblock_read.cpp.o"
  "CMakeFiles/bench_fig11_blockblock_read.dir/fig11_blockblock_read.cpp.o.d"
  "bench_fig11_blockblock_read"
  "bench_fig11_blockblock_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_blockblock_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
