file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_server_coalesce.dir/ablation_server_coalesce.cpp.o"
  "CMakeFiles/bench_ablation_server_coalesce.dir/ablation_server_coalesce.cpp.o.d"
  "bench_ablation_server_coalesce"
  "bench_ablation_server_coalesce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_server_coalesce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
