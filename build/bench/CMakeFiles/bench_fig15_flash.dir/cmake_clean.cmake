file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_flash.dir/fig15_flash.cpp.o"
  "CMakeFiles/bench_fig15_flash.dir/fig15_flash.cpp.o.d"
  "bench_fig15_flash"
  "bench_fig15_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
