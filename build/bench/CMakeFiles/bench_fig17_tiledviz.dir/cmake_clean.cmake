file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_tiledviz.dir/fig17_tiledviz.cpp.o"
  "CMakeFiles/bench_fig17_tiledviz.dir/fig17_tiledviz.cpp.o.d"
  "bench_fig17_tiledviz"
  "bench_fig17_tiledviz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_tiledviz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
