# Empty compiler generated dependencies file for bench_fig17_tiledviz.
# This may be replaced when dependencies are built.
