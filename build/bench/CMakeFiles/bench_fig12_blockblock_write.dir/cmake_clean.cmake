file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_blockblock_write.dir/fig12_blockblock_write.cpp.o"
  "CMakeFiles/bench_fig12_blockblock_write.dir/fig12_blockblock_write.cpp.o.d"
  "bench_fig12_blockblock_write"
  "bench_fig12_blockblock_write.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_blockblock_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
