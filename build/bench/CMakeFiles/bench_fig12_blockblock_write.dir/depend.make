# Empty dependencies file for bench_fig12_blockblock_write.
# This may be replaced when dependencies are built.
