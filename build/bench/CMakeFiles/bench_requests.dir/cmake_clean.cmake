file(REMOVE_RECURSE
  "CMakeFiles/bench_requests.dir/requests_analysis.cpp.o"
  "CMakeFiles/bench_requests.dir/requests_analysis.cpp.o.d"
  "bench_requests"
  "bench_requests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_requests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
