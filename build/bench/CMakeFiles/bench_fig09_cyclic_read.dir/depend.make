# Empty dependencies file for bench_fig09_cyclic_read.
# This may be replaced when dependencies are built.
