file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_cyclic_read.dir/fig09_cyclic_read.cpp.o"
  "CMakeFiles/bench_fig09_cyclic_read.dir/fig09_cyclic_read.cpp.o.d"
  "bench_fig09_cyclic_read"
  "bench_fig09_cyclic_read.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_cyclic_read.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
