file(REMOVE_RECURSE
  "CMakeFiles/example_tiled_viewer.dir/tiled_viewer.cpp.o"
  "CMakeFiles/example_tiled_viewer.dir/tiled_viewer.cpp.o.d"
  "example_tiled_viewer"
  "example_tiled_viewer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tiled_viewer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
