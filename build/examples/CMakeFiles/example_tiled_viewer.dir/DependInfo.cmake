
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/tiled_viewer.cpp" "examples/CMakeFiles/example_tiled_viewer.dir/tiled_viewer.cpp.o" "gcc" "examples/CMakeFiles/example_tiled_viewer.dir/tiled_viewer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pvfs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/pvfs/CMakeFiles/pvfs_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/pvfs_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/pvfs_io.dir/DependInfo.cmake"
  "/root/repo/build/src/mpiio/CMakeFiles/pvfs_mpiio.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/pvfs_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/simcluster/CMakeFiles/pvfs_simcluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pvfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/pvfs_models.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
