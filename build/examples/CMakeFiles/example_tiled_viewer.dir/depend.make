# Empty dependencies file for example_tiled_viewer.
# This may be replaced when dependencies are built.
