file(REMOVE_RECURSE
  "CMakeFiles/example_flash_checkpoint.dir/flash_checkpoint.cpp.o"
  "CMakeFiles/example_flash_checkpoint.dir/flash_checkpoint.cpp.o.d"
  "example_flash_checkpoint"
  "example_flash_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_flash_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
