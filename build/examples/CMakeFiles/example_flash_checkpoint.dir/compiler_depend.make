# Empty compiler generated dependencies file for example_flash_checkpoint.
# This may be replaced when dependencies are built.
