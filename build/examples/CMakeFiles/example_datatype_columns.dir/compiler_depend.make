# Empty compiler generated dependencies file for example_datatype_columns.
# This may be replaced when dependencies are built.
