file(REMOVE_RECURSE
  "CMakeFiles/example_datatype_columns.dir/datatype_columns.cpp.o"
  "CMakeFiles/example_datatype_columns.dir/datatype_columns.cpp.o.d"
  "example_datatype_columns"
  "example_datatype_columns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_datatype_columns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
