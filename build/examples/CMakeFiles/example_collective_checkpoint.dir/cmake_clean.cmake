file(REMOVE_RECURSE
  "CMakeFiles/example_collective_checkpoint.dir/collective_checkpoint.cpp.o"
  "CMakeFiles/example_collective_checkpoint.dir/collective_checkpoint.cpp.o.d"
  "example_collective_checkpoint"
  "example_collective_checkpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_collective_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
