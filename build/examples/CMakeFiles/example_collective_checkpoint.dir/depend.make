# Empty dependencies file for example_collective_checkpoint.
# This may be replaced when dependencies are built.
