file(REMOVE_RECURSE
  "CMakeFiles/example_artificial_benchmark.dir/artificial_benchmark.cpp.o"
  "CMakeFiles/example_artificial_benchmark.dir/artificial_benchmark.cpp.o.d"
  "example_artificial_benchmark"
  "example_artificial_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_artificial_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
