# Empty dependencies file for example_artificial_benchmark.
# This may be replaced when dependencies are built.
