# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_extent[1]_include.cmake")
include("/root/repo/build/tests/test_status_wire[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_distribution[1]_include.cmake")
include("/root/repo/build/tests/test_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_store_daemon[1]_include.cmake")
include("/root/repo/build/tests/test_client[1]_include.cmake")
include("/root/repo/build/tests/test_methods[1]_include.cmake")
include("/root/repo/build/tests/test_datatype[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_simcluster[1]_include.cmake")
include("/root/repo/build/tests/test_mpiio[1]_include.cmake")
include("/root/repo/build/tests/test_sim_collective[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_posixio[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_socket_transport[1]_include.cmake")
include("/root/repo/build/tests/test_locks[1]_include.cmake")
include("/root/repo/build/tests/test_checkpoint[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
