file(REMOVE_RECURSE
  "CMakeFiles/test_mpiio.dir/mpiio_test.cpp.o"
  "CMakeFiles/test_mpiio.dir/mpiio_test.cpp.o.d"
  "test_mpiio"
  "test_mpiio.pdb"
  "test_mpiio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpiio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
