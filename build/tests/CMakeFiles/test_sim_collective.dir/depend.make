# Empty dependencies file for test_sim_collective.
# This may be replaced when dependencies are built.
