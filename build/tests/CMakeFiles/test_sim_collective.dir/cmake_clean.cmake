file(REMOVE_RECURSE
  "CMakeFiles/test_sim_collective.dir/sim_collective_test.cpp.o"
  "CMakeFiles/test_sim_collective.dir/sim_collective_test.cpp.o.d"
  "test_sim_collective"
  "test_sim_collective.pdb"
  "test_sim_collective[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_collective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
