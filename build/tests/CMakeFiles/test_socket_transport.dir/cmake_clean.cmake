file(REMOVE_RECURSE
  "CMakeFiles/test_socket_transport.dir/socket_transport_test.cpp.o"
  "CMakeFiles/test_socket_transport.dir/socket_transport_test.cpp.o.d"
  "test_socket_transport"
  "test_socket_transport.pdb"
  "test_socket_transport[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_socket_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
