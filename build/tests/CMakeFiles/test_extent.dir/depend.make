# Empty dependencies file for test_extent.
# This may be replaced when dependencies are built.
