file(REMOVE_RECURSE
  "CMakeFiles/test_extent.dir/extent_test.cpp.o"
  "CMakeFiles/test_extent.dir/extent_test.cpp.o.d"
  "test_extent"
  "test_extent.pdb"
  "test_extent[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
