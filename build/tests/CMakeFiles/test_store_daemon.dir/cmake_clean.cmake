file(REMOVE_RECURSE
  "CMakeFiles/test_store_daemon.dir/store_daemon_test.cpp.o"
  "CMakeFiles/test_store_daemon.dir/store_daemon_test.cpp.o.d"
  "test_store_daemon"
  "test_store_daemon.pdb"
  "test_store_daemon[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_store_daemon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
