# Empty dependencies file for test_store_daemon.
# This may be replaced when dependencies are built.
