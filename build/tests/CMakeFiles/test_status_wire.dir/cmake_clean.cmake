file(REMOVE_RECURSE
  "CMakeFiles/test_status_wire.dir/status_wire_test.cpp.o"
  "CMakeFiles/test_status_wire.dir/status_wire_test.cpp.o.d"
  "test_status_wire"
  "test_status_wire.pdb"
  "test_status_wire[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_status_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
