# Empty compiler generated dependencies file for test_status_wire.
# This may be replaced when dependencies are built.
