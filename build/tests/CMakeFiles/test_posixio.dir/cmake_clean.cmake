file(REMOVE_RECURSE
  "CMakeFiles/test_posixio.dir/posixio_test.cpp.o"
  "CMakeFiles/test_posixio.dir/posixio_test.cpp.o.d"
  "test_posixio"
  "test_posixio.pdb"
  "test_posixio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_posixio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
