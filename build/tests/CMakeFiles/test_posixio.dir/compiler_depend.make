# Empty compiler generated dependencies file for test_posixio.
# This may be replaced when dependencies are built.
